//! Block parser and control-flow graphs over the token stream.
//!
//! [`build_trees`] matches `{}`/`()`/`[]` delimiters into token trees,
//! [`extract_functions`] finds every `fn` body (at any nesting — free
//! functions, `impl` methods, nested modules) outside `#[cfg(test)]`
//! regions, and [`Cfg::build`] lowers a body into an intraprocedural
//! control-flow graph: one basic block per statement, with edges for
//! `if`/`else` chains, `match` arms, loops, and early `return`. A `?`
//! statement's early-exit edge is *implicit*: dataflow consumers see
//! [`Stmt::has_try`] and propagate to the exit node themselves, because
//! the state on the error edge differs from the fallthrough state (a
//! `let h = map(…)?` binding never happens on the error path).

use crate::lexer::{Prep, Token};

/// A token tree: a plain token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Tok(Token),
    /// A `{…}`, `(…)` or `[…]` group.
    Group {
        /// Opening delimiter: `'{'`, `'('` or `'['`.
        delim: char,
        /// Children trees.
        children: Vec<Tree>,
        /// 1-indexed line of the opening delimiter.
        open_line: usize,
    },
}

impl Tree {
    /// The token text if this is a plain token.
    pub fn text(&self) -> Option<&str> {
        match self {
            Tree::Tok(t) => Some(&t.text),
            Tree::Group { .. } => None,
        }
    }

    /// `true` if this is the ident token `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tree::Tok(t) if t.is_ident && t.text == s)
    }

    /// `true` if this is the punct token `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tree::Tok(t) if !t.is_ident && t.text == s)
    }

    /// 1-indexed line this tree starts on.
    pub fn line(&self) -> usize {
        match self {
            Tree::Tok(t) => t.line,
            Tree::Group { open_line, .. } => *open_line,
        }
    }
}

/// Parses a token stream into trees. Tolerant of imbalance: a stray
/// closer is dropped, an unterminated group closes at end of input.
pub fn build_trees(tokens: &[Token]) -> Vec<Tree> {
    let mut i = 0;
    parse_group(tokens, &mut i, None)
}

fn parse_group(tokens: &[Token], i: &mut usize, closer: Option<&str>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let t = &tokens[*i];
        if !t.is_ident {
            if let Some(c) = closer {
                if t.text == c {
                    *i += 1; // consume the closing delimiter
                    return out;
                }
            }
            match t.text.as_str() {
                "{" | "(" | "[" => {
                    let delim = t.text.chars().next().unwrap_or('(');
                    let open_line = t.line;
                    let want = match delim {
                        '{' => "}",
                        '(' => ")",
                        _ => "]",
                    };
                    *i += 1;
                    let children = parse_group(tokens, i, Some(want));
                    out.push(Tree::Group {
                        delim,
                        children,
                        open_line,
                    });
                    continue;
                }
                "}" | ")" | "]" => {
                    // Stray closer (not ours): drop it.
                    *i += 1;
                    continue;
                }
                _ => {}
            }
        }
        out.push(Tree::Tok(t.clone()));
        *i += 1;
    }
    out
}

/// One parameter of an extracted function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding name (`self` for receivers; pattern parameters take
    /// their first identifier).
    pub name: String,
    /// The parameter is taken by reference (`&T`, `&mut T`, `&self`).
    pub by_ref: bool,
}

/// One extracted function body.
#[derive(Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// The declared parameters, in order (receiver included).
    pub params: Vec<Param>,
    /// The `{…}` body children.
    pub body: Vec<Tree>,
}

/// Parses a signature group's children into parameters. Each parameter is
/// `pat: Type` (or a bare receiver); the binding name is the first
/// identifier after any `&`/`mut` prefix, and `by_ref` records whether the
/// *type* side starts with `&` (receivers: whether the receiver does).
fn parse_params(children: &[Tree]) -> Vec<Param> {
    let mut out = Vec::new();
    for arg in split_top_level_commas(children) {
        if arg.is_empty() {
            continue;
        }
        // Receiver forms: `self`, `&self`, `&mut self`, `mut self`.
        let colon = arg.iter().position(|t| t.is_punct(":"));
        let by_ref = match colon {
            // `&'a mut Type` — a reference type after the colon.
            Some(c) => arg.get(c + 1).is_some_and(|t| t.is_punct("&")),
            None => arg.first().is_some_and(|t| t.is_punct("&")),
        };
        let pat = match colon {
            Some(c) => &arg[..c],
            None => arg,
        };
        let name = pat
            .iter()
            .filter_map(|t| match t {
                Tree::Tok(tok) if tok.is_ident && tok.text != "mut" => Some(tok.text.clone()),
                _ => None,
            })
            .next()
            .unwrap_or_default();
        if !name.is_empty() {
            out.push(Param { name, by_ref });
        }
    }
    out
}

/// Splits a tree slice at top-level commas (shared by parameter parsing
/// and call-argument splitting).
pub fn split_top_level_commas(children: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (k, t) in children.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&children[start..k]);
            start = k + 1;
        }
    }
    if start < children.len() {
        out.push(&children[start..]);
    }
    out
}

/// Extracts every function with a body from `trees`, recursing into brace
/// groups (impl blocks, modules). Functions whose `fn` token lies in a
/// `#[cfg(test)]` region of `prep` are skipped, as are closure-less trait
/// method *declarations* (`fn f(…);`).
pub fn extract_functions(prep: &Prep, trees: &[Tree]) -> Vec<Function> {
    let mut out = Vec::new();
    walk_functions(prep, trees, &mut out);
    out
}

fn walk_functions(prep: &Prep, trees: &[Tree], out: &mut Vec<Function>) {
    let mut i = 0;
    while i < trees.len() {
        if trees[i].is_ident("fn") {
            let fn_line = trees[i].line();
            let name = trees
                .get(i + 1)
                .and_then(|t| t.text())
                .unwrap_or("")
                .to_string();
            // Scan forward for the body brace group; a `;` first means a
            // trait-method declaration with no body. The first `(` group
            // on the way is the parameter list (return-type parentheses
            // only appear after it).
            let mut j = i + 2;
            let mut body = None;
            let mut params = Vec::new();
            let mut saw_params = false;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Group {
                        delim: '{',
                        children,
                        ..
                    } => {
                        body = Some(children.clone());
                        break;
                    }
                    Tree::Group {
                        delim: '(',
                        children,
                        ..
                    } if !saw_params => {
                        saw_params = true;
                        params = parse_params(children);
                        j += 1;
                    }
                    t if t.is_punct(";") => break,
                    _ => j += 1,
                }
            }
            if let Some(body) = body {
                if !prep.in_test(fn_line) {
                    // Nested functions inside this body are found by the
                    // recursion below; the body itself is scanned too.
                    walk_functions(prep, &body, out);
                    out.push(Function {
                        name,
                        line: fn_line,
                        params,
                        body,
                    });
                }
                i = j + 1;
                continue;
            }
        }
        if let Tree::Group {
            delim: '{',
            children,
            ..
        } = &trees[i]
        {
            walk_functions(prep, children, out);
        }
        i += 1;
    }
}

/// One statement of a basic block: its token trees and starting line.
#[derive(Debug)]
pub struct Stmt {
    /// The statement's token trees (terminator `;` removed).
    pub trees: Vec<Tree>,
    /// 1-indexed starting line.
    pub line: usize,
    /// The statement contains a top-level `?` (an implicit early-return
    /// edge to the exit node).
    pub has_try: bool,
    /// The statement is a `return`/`break`-style terminator.
    pub is_return: bool,
    /// The statement is the function's tail expression (no `;`): its
    /// value — and any handle mentioned in it — escapes to the caller.
    pub is_tail: bool,
}

/// A basic block: exactly one statement (possibly empty for join nodes)
/// plus successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// The statement, if any (join/entry/exit blocks have none).
    pub stmt: Option<Stmt>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// An intraprocedural control-flow graph with dedicated entry/exit nodes.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; edges index into this vector.
    pub blocks: Vec<Block>,
    /// Entry block index.
    pub entry: usize,
    /// Exit block index: every `return` and fallthrough leads here. `?`
    /// error edges are implicit (see [`Stmt::has_try`]).
    pub exit: usize,
}

impl Cfg {
    /// Lowers a function body into a CFG.
    pub fn build(body: &[Tree]) -> Cfg {
        let mut cfg = Cfg {
            blocks: vec![Block::default(), Block::default()],
            entry: 0,
            exit: 1,
        };
        let end = cfg.lower_block(body, cfg.entry, true);
        cfg.link(end, 1);
        cfg
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn link(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers a `{}` body: returns the block control falls out of.
    /// `is_fn_body` marks the final expression-statement as the tail.
    fn lower_block(&mut self, trees: &[Tree], mut cur: usize, is_fn_body: bool) -> usize {
        let stmts = split_statements(trees);
        let n = stmts.len();
        for (k, raw) in stmts.into_iter().enumerate() {
            let is_last = k + 1 == n;
            cur = self.lower_stmt(raw, cur, is_fn_body && is_last);
        }
        cur
    }

    /// Lowers one raw statement; returns the block control continues in.
    fn lower_stmt(&mut self, raw: RawStmt, cur: usize, tail_position: bool) -> usize {
        match classify(&raw) {
            StmtShape::If => self.lower_if(&raw.trees, cur),
            StmtShape::Match => self.lower_match(&raw.trees, cur),
            StmtShape::Loop => self.lower_loop(&raw.trees, cur),
            StmtShape::Block(children) => {
                // Plain `{ … }` statement (or `unsafe { … }`).
                self.lower_block(&children, cur, false)
            }
            StmtShape::Simple { is_return } => {
                let has_try = top_level_try(&raw.trees);
                let is_tail = tail_position && !raw.terminated && !is_return;
                let b = self.new_block();
                self.blocks[b].stmt = Some(Stmt {
                    line: raw.trees.first().map(Tree::line).unwrap_or(0),
                    trees: raw.trees,
                    has_try,
                    is_return,
                    is_tail,
                });
                self.link(cur, b);
                if is_return {
                    self.link(b, self.exit);
                    // Control never falls through a return; park the
                    // continuation in an unreachable block.
                    let dead = self.new_block();
                    return dead;
                }
                b
            }
        }
    }

    /// `if cond { … } else if … { … } else { … }` — evaluates the
    /// condition as a statement (it may contain DMA calls or `?`), then
    /// branches.
    fn lower_if(&mut self, trees: &[Tree], cur: usize) -> usize {
        // Head: tokens after `if` (and an optional `let` pattern) up to
        // the then-block.
        let then_at = trees
            .iter()
            .position(|t| matches!(t, Tree::Group { delim: '{', .. }))
            .unwrap_or(trees.len());
        let head: Vec<Tree> = trees[1..then_at].to_vec();
        let has_try = top_level_try(&head);
        let h = self.new_block();
        self.blocks[h].stmt = Some(Stmt {
            line: trees.first().map(Tree::line).unwrap_or(0),
            trees: head,
            has_try,
            is_return: false,
            is_tail: false,
        });
        self.link(cur, h);
        let join = self.new_block();
        if let Some(Tree::Group { children, .. }) = trees.get(then_at) {
            let end = self.lower_block(children, h, false);
            self.link(end, join);
        } else {
            self.link(h, join);
        }
        // `else`:
        match trees.get(then_at + 1) {
            Some(t) if t.is_ident("else") => {
                let rest = &trees[then_at + 2..];
                match rest.first() {
                    Some(Tree::Group {
                        delim: '{',
                        children,
                        ..
                    }) => {
                        let end = self.lower_block(children, h, false);
                        self.link(end, join);
                    }
                    Some(t2) if t2.is_ident("if") => {
                        let end = self.lower_if(rest, h);
                        self.link(end, join);
                    }
                    _ => self.link(h, join),
                }
            }
            _ => self.link(h, join),
        }
        join
    }

    /// `match scrut { pat => body, … }` — the scrutinee is evaluated once,
    /// then each arm body is an alternative path to the join node.
    fn lower_match(&mut self, trees: &[Tree], cur: usize) -> usize {
        let arms_at = trees
            .iter()
            .position(|t| matches!(t, Tree::Group { delim: '{', .. }))
            .unwrap_or(trees.len());
        let head: Vec<Tree> = trees[1..arms_at].to_vec();
        let has_try = top_level_try(&head);
        let h = self.new_block();
        self.blocks[h].stmt = Some(Stmt {
            line: trees.first().map(Tree::line).unwrap_or(0),
            trees: head,
            has_try,
            is_return: false,
            is_tail: false,
        });
        self.link(cur, h);
        let join = self.new_block();
        let mut any_arm = false;
        if let Some(Tree::Group { children, .. }) = trees.get(arms_at) {
            for arm in split_match_arms(children) {
                any_arm = true;
                let end = self.lower_block(&arm, h, false);
                self.link(end, join);
            }
        }
        if !any_arm {
            self.link(h, join);
        }
        join
    }

    /// `loop`/`while`/`for` — head evaluates, body loops back to the
    /// head, and the head also exits to the continuation (conservatively
    /// even for `loop`, which matches `break`).
    fn lower_loop(&mut self, trees: &[Tree], cur: usize) -> usize {
        let body_at = trees
            .iter()
            .position(|t| matches!(t, Tree::Group { delim: '{', .. }))
            .unwrap_or(trees.len());
        let head: Vec<Tree> = trees[1..body_at].to_vec();
        let has_try = top_level_try(&head);
        let h = self.new_block();
        self.blocks[h].stmt = Some(Stmt {
            line: trees.first().map(Tree::line).unwrap_or(0),
            trees: head,
            has_try,
            is_return: false,
            is_tail: false,
        });
        self.link(cur, h);
        if let Some(Tree::Group { children, .. }) = trees.get(body_at) {
            let end = self.lower_block(children, h, false);
            self.link(end, h); // back edge
        }
        let after = self.new_block();
        self.link(h, after);
        after
    }
}

/// A raw statement before lowering.
struct RawStmt {
    trees: Vec<Tree>,
    /// Ended with an explicit `;`.
    terminated: bool,
}

enum StmtShape {
    If,
    Match,
    Loop,
    Block(Vec<Tree>),
    Simple { is_return: bool },
}

fn classify(raw: &RawStmt) -> StmtShape {
    match raw.trees.first() {
        Some(t) if t.is_ident("if") => StmtShape::If,
        Some(t) if t.is_ident("match") => StmtShape::Match,
        Some(t) if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") => {
            StmtShape::Loop
        }
        Some(t) if t.is_ident("return") || t.is_ident("break") || t.is_ident("continue") => {
            StmtShape::Simple { is_return: true }
        }
        Some(t) if t.is_ident("unsafe") => match raw.trees.get(1) {
            Some(Tree::Group {
                delim: '{',
                children,
                ..
            }) if raw.trees.len() == 2 => StmtShape::Block(children.clone()),
            _ => StmtShape::Simple { is_return: false },
        },
        Some(Tree::Group {
            delim: '{',
            children,
            ..
        }) if raw.trees.len() == 1 => StmtShape::Block(children.clone()),
        _ => StmtShape::Simple { is_return: false },
    }
}

/// Splits a body's trees into statements: at top-level `;`, and after a
/// block-shaped statement (`if`/`match`/`loop`/`while`/`for`/plain block)
/// whose brace group is not followed by `;` (expression-statement form).
fn split_statements(trees: &[Tree]) -> Vec<RawStmt> {
    let mut out = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let t = &trees[i];
        if t.is_punct(";") {
            out.push(RawStmt {
                trees: std::mem::take(&mut cur),
                terminated: true,
            });
            i += 1;
            continue;
        }
        let block_headed = cur.first().is_some_and(|h| {
            ["if", "match", "loop", "while", "for", "unsafe", "fn"]
                .iter()
                .any(|k| h.is_ident(k))
        }) || (cur.is_empty() && matches!(t, Tree::Group { delim: '{', .. }));
        cur.push(t.clone());
        if block_headed && matches!(t, Tree::Group { delim: '{', .. }) {
            // `if … { } else …` continues; anything else ends the
            // statement unless a `;`/`else` follows.
            let next_else = trees.get(i + 1).is_some_and(|n| n.is_ident("else"));
            let next_semi = trees.get(i + 1).is_some_and(|n| n.is_punct(";"));
            let head_if = cur.first().is_some_and(|h| h.is_ident("if"));
            if !(next_semi || (head_if && next_else)) {
                out.push(RawStmt {
                    trees: std::mem::take(&mut cur),
                    terminated: true,
                });
            }
        }
        i += 1;
    }
    if !cur.is_empty() {
        out.push(RawStmt {
            trees: cur,
            terminated: false,
        });
    }
    out
}

/// Splits a match group's children into arm bodies. Arms are separated by
/// top-level `,`; the `pat (if guard)? =>` prefix is dropped so only the
/// arm's value expression remains.
fn split_match_arms(children: &[Tree]) -> Vec<Vec<Tree>> {
    let mut arms = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    for t in children {
        if t.is_punct(",") {
            if !cur.is_empty() {
                arms.push(std::mem::take(&mut cur));
            }
            continue;
        }
        cur.push(t.clone());
        // A brace-bodied arm (`pat => { … }`) also ends without a comma.
        if matches!(t, Tree::Group { delim: '{', .. }) && cur.iter().any(|x| x.is_punct("=>")) {
            arms.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        arms.push(cur);
    }
    arms.into_iter()
        .map(|arm| {
            let at = arm.iter().rposition(|t| t.is_punct("=>"));
            match at {
                Some(k) => arm[k + 1..].to_vec(),
                None => arm,
            }
        })
        .filter(|a| !a.is_empty())
        .collect()
}

/// Whether the statement contains a `?` outside any nested group.
fn top_level_try(trees: &[Tree]) -> bool {
    trees.iter().any(|t| t.is_punct("?"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{prep, tokenize};

    fn body_of(src: &str) -> Vec<Tree> {
        let p = prep("x.rs", src);
        let trees = build_trees(&tokenize(&p.blank));
        let mut fns = extract_functions(&p, &trees);
        assert!(!fns.is_empty(), "no function found in {src}");
        fns.pop().expect("checked").body
    }

    #[test]
    fn trees_match_delimiters() {
        let p = prep("x.rs", "fn f(a: u32) { g(a); }\n");
        let trees = build_trees(&tokenize(&p.blank));
        // fn, f, (args), {body}
        assert_eq!(trees.len(), 4);
        assert!(matches!(&trees[2], Tree::Group { delim: '(', .. }));
        assert!(matches!(&trees[3], Tree::Group { delim: '{', .. }));
    }

    #[test]
    fn functions_found_in_impls_not_in_tests() {
        let src =
            "impl S {\n    fn a(&self) {}\n}\nfn b() {}\n#[cfg(test)]\nmod t {\n    fn c() {}\n}\n";
        let p = prep("x.rs", src);
        let trees = build_trees(&tokenize(&p.blank));
        let names: Vec<String> = extract_functions(&p, &trees)
            .into_iter()
            .map(|f| f.name)
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n";
        let p = prep("x.rs", src);
        let trees = build_trees(&tokenize(&p.blank));
        let names: Vec<String> = extract_functions(&p, &trees)
            .into_iter()
            .map(|f| f.name)
            .collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn signatures_yield_named_params_with_ref_flags() {
        let src = "impl S {\n    fn m(&self, ctx: &mut C, m: M, n: usize) -> R { x }\n}\nfn free(mut a: A, b: &B) {}\n";
        let p = prep("x.rs", src);
        let trees = build_trees(&tokenize(&p.blank));
        let fns = extract_functions(&p, &trees);
        let m = fns.iter().find(|f| f.name == "m").expect("method");
        let names: Vec<&str> = m.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["self", "ctx", "m", "n"]);
        let refs: Vec<bool> = m.params.iter().map(|p| p.by_ref).collect();
        assert_eq!(refs, [true, true, false, false]);
        let free = fns.iter().find(|f| f.name == "free").expect("free fn");
        assert_eq!(free.params[0].name, "a");
        assert!(!free.params[0].by_ref);
        assert_eq!(free.params[1].name, "b");
        assert!(free.params[1].by_ref);
    }

    #[test]
    fn straight_line_cfg_chains_to_exit() {
        let cfg = Cfg::build(&body_of("fn f() { a(); b(); }\n"));
        // entry, exit, a-block, b-block
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![2]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        assert_eq!(cfg.blocks[3].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_forms_a_diamond() {
        let cfg = Cfg::build(&body_of(
            "fn f(c: bool) { if c { a(); } else { b(); } done(); }\n",
        ));
        // Both arms reach the statement after the if.
        let head = cfg.blocks[cfg.entry].succs[0];
        assert_eq!(cfg.blocks[head].succs.len(), 2, "{cfg:?}");
    }

    #[test]
    fn try_statement_edges_to_exit() {
        let cfg = Cfg::build(&body_of("fn f() -> R { g()?; h(); Ok(()) }\n"));
        let g = cfg.blocks[cfg.entry].succs[0];
        // The error edge is implicit (has_try), not a succs entry: the
        // dataflow consumer propagates a different state along it.
        assert!(!cfg.blocks[g].succs.contains(&cfg.exit), "{cfg:?}");
        assert!(cfg.blocks[g].stmt.as_ref().expect("stmt").has_try);
        // The tail expression is marked.
        let tail = cfg
            .blocks
            .iter()
            .filter_map(|b| b.stmt.as_ref())
            .find(|s| s.is_tail);
        assert!(tail.is_some(), "{cfg:?}");
    }

    #[test]
    fn return_statement_terminates_path() {
        let cfg = Cfg::build(&body_of("fn f(c: bool) { if c { return; } a(); }\n"));
        let ret = cfg
            .blocks
            .iter()
            .find(|b| b.stmt.as_ref().is_some_and(|s| s.is_return))
            .expect("return block");
        assert_eq!(ret.succs, vec![cfg.exit]);
    }

    #[test]
    fn loops_have_back_edges() {
        let cfg = Cfg::build(&body_of("fn f() { while go() { step(); } after(); }\n"));
        let head = cfg.blocks[cfg.entry].succs[0];
        let step = cfg.blocks[head]
            .succs
            .iter()
            .copied()
            .find(|&s| {
                cfg.blocks[s]
                    .stmt
                    .as_ref()
                    .is_some_and(|st| st.trees.iter().any(|t| t.is_ident("step")))
            })
            .expect("body block");
        assert!(cfg.blocks[step].succs.contains(&head), "back edge missing");
    }

    #[test]
    fn match_arms_all_reach_join() {
        let cfg = Cfg::build(&body_of(
            "fn f(x: E) { match x { E::A => a(), E::B => { b(); } } done(); }\n",
        ));
        let head = cfg.blocks[cfg.entry].succs[0];
        // Two arms branch from the head.
        assert!(cfg.blocks[head].succs.len() >= 2, "{cfg:?}");
    }
}
