//! The DMA-API protocol typestate checker.
//!
//! Tracks the state of DMA handles (`Unmapped → Mapped → SyncedForCpu →
//! Unmapped`) through local variables over each function's CFG and flags
//! the static mirror of dmasan's runtime rules:
//!
//! - **use-after-unmap** — a handle projected (`m.iova`, `m.len`, …) on a
//!   path after `unmap`/`free_coherent` (dmasan: `stale_access`).
//! - **leak-on-exit** — a `map`/`alloc_coherent` result that can reach a
//!   `return`/`?` edge or function exit still mapped, without an unmap or
//!   an ownership transfer (dmasan: `leak` at teardown).
//! - **double-unmap** — a handle unmapped twice along some path (dmasan:
//!   `double_unmap`).
//! - **sync-before-cpu-read** — a CPU-side read of a streaming
//!   `FromDevice`/`Bidirectional` buffer while it is mapped and not yet
//!   `sync_for_cpu`'d. dmasan has no mirror for this rule: the runtime
//!   cannot observe CPU loads, only device-side bus accesses.
//!
//! ## Interprocedural mode
//!
//! With an [`InterCtx`] (a workspace [`crate::callgraph::CallGraph`] plus
//! [`crate::summary`] effect summaries), call sites are resolved instead
//! of waived: a handle passed to a helper whose summary proves an unmap
//! keeps being tracked (so a later projection is a use-after-unmap *via*
//! that helper), a helper that only reads a by-ref handle keeps the leak
//! obligation with the caller, a `let h = make_mapping(…)` binding whose
//! callee returns a fresh mapping is tracked like a direct `map`, and a
//! handle that genuinely escapes — stored, captured by a closure, passed
//! to an unknown callee — is reported as an [`EscapeNote`] rather than
//! silently dropped from the lattice.
//!
//! ## Soundness caveats (by design, to keep the pass zero-false-positive)
//!
//! The core analysis has **no alias tracking**: only handles bound by a
//! direct `let h = engine.map(…)` / `alloc_coherent(…)` call chain
//! (optionally suffixed `?` / `.unwrap()` / `.expect(…)`) — or, with
//! summaries, by a call returning a fresh mapping — are tracked. Escaped
//! handles end tracking (now with a note); map results consumed by a
//! surrounding expression (a `match` scrutinee, a closure wrapper like
//! `obs::profile::scope(…, |ctx| engine.map(…))`) are not tracked at all.
//! A `map` call is recognized only when its first argument is a `ctx`-ish
//! identifier and its last argument names a `DmaDirection` (or is the
//! literal identifier `dir`), which keeps `Iterator::map`, page-table
//! `map(page, pfn, perms)`, and `perms()`-projected calls out. Summary
//! application requires a *unique* name+arity resolution; ambiguous names
//! fall back to the conservative ownership-transfer treatment.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{closure_at, closure_body_end, CallGraph, INTRINSICS};
use crate::cfg::{build_trees, extract_functions, Cfg, Stmt, Tree};
use crate::lexer::Prep;
use crate::summary::{FnSummary, RetEffect};

/// One protocol finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name: `use-after-unmap`, `leak-on-exit`,
    /// `double-unmap`, `sync-before-cpu-read`.
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: usize,
    /// What was found.
    pub detail: String,
}

/// Why a tracked handle left the analysis: the "escapes analysis" notes
/// the interprocedural pass reports instead of silently dropping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeKind {
    /// Passed to a call that resolved to no workspace function.
    UnknownCallee,
    /// Stored, aliased, or passed to a helper that keeps/returns it.
    Moved,
    /// Captured by a closure body.
    ClosureCapture,
}

impl EscapeKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EscapeKind::UnknownCallee => "unknown-callee",
            EscapeKind::Moved => "moved",
            EscapeKind::ClosureCapture => "closure-capture",
        }
    }
}

/// One handle-escape note (not a violation: a declared analysis hole).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeNote {
    /// Enclosing function.
    pub function: String,
    /// 1-indexed line of the escape.
    pub line: usize,
    /// The escaping handle variable.
    pub var: String,
    /// How it escaped.
    pub kind: EscapeKind,
    /// Human-readable description.
    pub detail: String,
}

/// The interprocedural context: resolution + summaries, threaded through
/// the typestate pass when available.
pub struct InterCtx<'a> {
    /// The workspace call graph.
    pub graph: &'a CallGraph,
    /// Per-node effect summaries, indexed like `graph.nodes`.
    pub summaries: &'a [FnSummary],
}

/// Streaming direction of a tracked mapping, as far as the source shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    ToDevice,
    FromDevice,
    Bidirectional,
    /// Direction is a runtime value (`dir` variable): sync rule disabled.
    Unknown,
    /// Coherent allocation: always CPU-visible, sync rule not applicable.
    Coherent,
}

impl Dir {
    pub(crate) fn needs_cpu_sync(self) -> bool {
        matches!(self, Dir::FromDevice | Dir::Bidirectional)
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Dir::ToDevice => "ToDevice",
            Dir::FromDevice => "FromDevice",
            Dir::Bidirectional => "Bidirectional",
            Dir::Unknown => "Unknown",
            Dir::Coherent => "Coherent",
        }
    }
}

// Typestate bits. A variable's state is the *set* of states it may be in
// on some path reaching the program point (union join).
const MAPPED: u8 = 1;
const UNMAPPED: u8 = 2;
const SYNCED: u8 = 4;

/// Abstract state of one tracked handle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VarState {
    bits: u8,
    dir: Dir,
    /// The identifier passed to `DmaBuf::new(addr, …)` at the map site,
    /// when visible — lets the sync rule connect `mem.read_vec(addr, …)`
    /// back to this mapping.
    buf: Option<String>,
    /// Line of the map call that created the handle.
    born_line: usize,
}

type State = BTreeMap<String, VarState>;

fn join_into(dst: &mut State, src: &State) -> bool {
    let mut changed = false;
    for (k, v) in src {
        match dst.get_mut(k) {
            None => {
                dst.insert(k.clone(), v.clone());
                changed = true;
            }
            Some(d) => {
                let bits = d.bits | v.bits;
                if bits != d.bits {
                    d.bits = bits;
                    changed = true;
                }
                if d.dir != v.dir && d.dir != Dir::Unknown {
                    d.dir = Dir::Unknown;
                    changed = true;
                }
            }
        }
    }
    changed
}

pub(crate) const MAP_METHODS: [&str; 3] = ["map", "map_sg", "alloc_coherent"];
pub(crate) const UNMAP_METHODS: [&str; 3] = ["unmap", "unmap_sg", "free_coherent"];
/// CPU-side read markers on the simulated memory (`SimMemory` API).
pub(crate) const READ_METHODS: [&str; 4] = ["read", "read_vec", "read_into", "equals"];

/// What a recognized `.method(…)` call does to tracked state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallKind {
    Map,
    Unmap,
    SyncCpu,
    SyncDev,
}

/// One ordered event extracted from a statement.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A recognized DMA call; `args` are the bare identifiers in its
    /// argument list (the tracked one, if any, is the handle).
    Call {
        kind: CallKind,
        args: Vec<String>,
        line: usize,
    },
    /// `v.…` — a projection of `v` (reads the handle's fields).
    Proj { var: String, line: usize },
    /// A bare mention of `v` outside any recognized call: potential
    /// ownership transfer (store, alias, return).
    Bare { var: String },
    /// A CPU-side memory read; `head` are the identifiers of its first
    /// argument (the address expression).
    Read { head: Vec<String>, line: usize },
    /// A call that is not a DMA intrinsic: `name(…)` or `recv.name(…)`.
    /// `args` holds the simple-identifier form of each top-level argument
    /// (`m`, `&m`, `&mut m`), `None` for anything more complex.
    UserCall {
        name: String,
        method: bool,
        /// Free call preceded by a `::` path segment (resolution skipped:
        /// the path may name a foreign type's constructor).
        qualified: bool,
        args: Vec<Option<String>>,
        line: usize,
    },
    /// A closure body mentioning `vars` (its own parameters excluded).
    ClosureCapture { vars: Vec<String>, line: usize },
}

fn ident_of(t: &Tree) -> Option<&str> {
    match t {
        Tree::Tok(tok) if tok.is_ident => Some(&tok.text),
        _ => None,
    }
}

/// Splits a call's argument trees at top-level commas.
pub(crate) fn split_args(children: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (k, t) in children.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&children[start..k]);
            start = k + 1;
        }
    }
    if start < children.len() {
        out.push(&children[start..]);
    }
    out
}

/// The bare identifier of an argument of the form `x`, `&x`, or `&mut x`.
pub(crate) fn simple_arg_ident(arg: &[Tree]) -> Option<String> {
    let mut s = arg;
    while s
        .first()
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        s = &s[1..];
    }
    match s {
        [t] => ident_of(t).map(str::to_string),
        _ => None,
    }
}

/// First argument is `ctx`-flavored: an identifier ending in `ctx`
/// (`ctx`, `setup_ctx`, `&mut ctx`, `r.ctx`).
fn ctx_first_arg(children: &[Tree]) -> bool {
    let args = split_args(children);
    let Some(first) = args.first() else {
        return false;
    };
    first
        .iter()
        .any(|t| ident_of(t).is_some_and(|s| s.ends_with("ctx")))
}

/// Last argument names a direction: mentions `DmaDirection` or is exactly
/// the identifier `dir`. Rejects `dir.perms()` and friends.
pub(crate) fn dir_last_arg(children: &[Tree]) -> Option<Dir> {
    let args = split_args(children);
    let last = args.last()?;
    if let Some(k) = last.iter().position(|t| t.is_ident("DmaDirection")) {
        let name = last.get(k + 2).and_then(ident_of).unwrap_or("");
        return Some(match name {
            "ToDevice" => Dir::ToDevice,
            "FromDevice" => Dir::FromDevice,
            "Bidirectional" => Dir::Bidirectional,
            _ => Dir::Unknown,
        });
    }
    if last.len() == 1 && last[0].is_ident("dir") {
        return Some(Dir::Unknown);
    }
    None
}

/// The identifier handed to `DmaBuf::new(addr, …)` inside map args.
pub(crate) fn dma_buf_ident(children: &[Tree]) -> Option<String> {
    let mut i = 0;
    while i < children.len() {
        if children[i].is_ident("DmaBuf")
            && children.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && children.get(i + 2).is_some_and(|t| t.is_ident("new"))
        {
            if let Some(Tree::Group {
                children: inner, ..
            }) = children.get(i + 3)
            {
                return inner.first().and_then(ident_of).map(str::to_string);
            }
        }
        if let Tree::Group {
            children: inner, ..
        } = &children[i]
        {
            if let Some(found) = dma_buf_ident(inner) {
                return Some(found);
            }
        }
        i += 1;
    }
    None
}

/// Classifies a method call; `None` means not a DMA-API call.
pub(crate) fn dma_call_kind(name: &str, children: &[Tree]) -> Option<CallKind> {
    if MAP_METHODS.contains(&name) && ctx_first_arg(children) {
        if name == "alloc_coherent" || dir_last_arg(children).is_some() {
            return Some(CallKind::Map);
        }
        return None;
    }
    if UNMAP_METHODS.contains(&name) && ctx_first_arg(children) {
        return Some(CallKind::Unmap);
    }
    if name == "sync_for_cpu" && ctx_first_arg(children) {
        return Some(CallKind::SyncCpu);
    }
    if name == "sync_for_device" && ctx_first_arg(children) {
        return Some(CallKind::SyncDev);
    }
    None
}

/// All bare identifiers in a tree slice (recursing into groups).
fn bare_idents(trees: &[Tree], out: &mut Vec<String>) {
    for (k, t) in trees.iter().enumerate() {
        match t {
            Tree::Tok(tok) if tok.is_ident => {
                let projected = trees.get(k + 1).is_some_and(|n| n.is_punct("."));
                if !projected {
                    out.push(tok.text.clone());
                }
            }
            Tree::Group { children, .. } => bare_idents(children, out),
            _ => {}
        }
    }
}

/// Every identifier (bare or projected) in a tree slice.
fn all_idents(trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Tok(tok) if tok.is_ident => out.push(tok.text.clone()),
            Tree::Group { children, .. } => all_idents(children, out),
            _ => {}
        }
    }
}

/// Keywords that look like `ident (…)` but never name a callable.
const CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "fn", "in", "as", "move", "loop", "let", "else",
];

/// Per-argument simple identifiers for a user call.
fn arg_idents(children: &[Tree]) -> Vec<Option<String>> {
    split_args(children)
        .iter()
        .map(|a| simple_arg_ident(a))
        .collect()
}

/// Left-to-right event extraction over a statement's trees.
pub(crate) fn scan(trees: &[Tree], in_dma_args: bool, evs: &mut Vec<Ev>) {
    let mut i = 0;
    while i < trees.len() {
        // Closure header: emit the capture event, skip the `|…|` header,
        // and let the body tokens be scanned normally below (so DMA calls
        // inside closures keep their historical inline treatment).
        if let Some((params_end, params_start)) = closure_at(trees, i) {
            let params: Vec<String> = trees[params_start..params_end]
                .iter()
                .filter_map(|t| ident_of(t).filter(|s| *s != "mut").map(str::to_string))
                .collect();
            let body_end = closure_body_end(trees, params_end + 1);
            let mut vars = Vec::new();
            all_idents(&trees[params_end + 1..body_end], &mut vars);
            vars.retain(|v| !params.contains(v));
            vars.dedup();
            evs.push(Ev::ClosureCapture {
                vars,
                line: trees[i].line(),
            });
            i = params_end + 1;
            continue;
        }
        // `. method ( args )`
        if trees[i].is_punct(".") {
            if let (
                Some(name),
                Some(Tree::Group {
                    delim: '(',
                    children,
                    ..
                }),
            ) = (trees.get(i + 1).and_then(ident_of), trees.get(i + 2))
            {
                let line = trees[i + 1].line();
                if let Some(kind) = dma_call_kind(name, children) {
                    let mut args = Vec::new();
                    bare_idents(children, &mut args);
                    evs.push(Ev::Call { kind, args, line });
                    // Projections inside DMA args still count as uses;
                    // bare mentions are consumed by the call.
                    scan(children, true, evs);
                    i += 3;
                    continue;
                }
                if READ_METHODS.contains(&name) {
                    let mut head = Vec::new();
                    if let Some(first) = split_args(children).first() {
                        bare_idents(first, &mut head);
                    }
                    evs.push(Ev::Read { head, line });
                    scan(children, in_dma_args, evs);
                    i += 3;
                    continue;
                }
                if !in_dma_args {
                    evs.push(Ev::UserCall {
                        name: name.to_string(),
                        method: true,
                        qualified: false,
                        args: arg_idents(children),
                        line,
                    });
                    scan_call_args(children, evs);
                    i += 3;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        match &trees[i] {
            Tree::Tok(tok) if tok.is_ident => {
                let projected = trees.get(i + 1).is_some_and(|n| n.is_punct("."));
                let called = matches!(trees.get(i + 1), Some(Tree::Group { delim: '(', .. }))
                    && !CALL_KEYWORDS.contains(&tok.text.as_str());
                if projected {
                    evs.push(Ev::Proj {
                        var: tok.text.clone(),
                        line: tok.line,
                    });
                    i += 1;
                } else if called && !in_dma_args {
                    let qualified = i > 0 && trees[i - 1].is_punct("::");
                    if let Some(Tree::Group { children, .. }) = trees.get(i + 1) {
                        evs.push(Ev::UserCall {
                            name: tok.text.clone(),
                            method: false,
                            qualified,
                            args: arg_idents(children),
                            line: tok.line,
                        });
                        scan_call_args(children, evs);
                    }
                    i += 2;
                } else {
                    if !in_dma_args {
                        evs.push(Ev::Bare {
                            var: tok.text.clone(),
                        });
                    }
                    i += 1;
                }
            }
            Tree::Group { children, .. } => {
                scan(children, in_dma_args, evs);
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
}

/// Scans a user call's argument list: simple-identifier arguments are
/// owned by the `UserCall` event itself (so the transfer function decides
/// their fate from the callee summary); everything else scans normally.
fn scan_call_args(children: &[Tree], evs: &mut Vec<Ev>) {
    for arg in split_args(children) {
        if simple_arg_ident(arg).is_none() {
            scan(arg, false, evs);
        }
    }
}

/// A recognized trackable map binding.
#[derive(Debug)]
pub(crate) struct Bind {
    pub(crate) var: String,
    pub(crate) dir: Dir,
    pub(crate) buf: Option<String>,
    pub(crate) line: usize,
}

/// Detects a trackable map binding in a statement: `let h = <chain>.map(…)`
/// (modulo `?`/`.unwrap()`/`.expect(…)` suffixes), or — with summaries —
/// `let h = make_mapping(…)` where the callee provably returns a fresh
/// mapping. The RHS must *end* with the recognized call so results
/// consumed by a larger expression are left untracked.
pub(crate) fn detect_bind(trees: &[Tree], inter: Option<&InterCtx>) -> Option<Bind> {
    if !trees.first()?.is_ident("let") {
        return None;
    }
    let mut j = 1;
    if trees.get(j)?.is_ident("mut") {
        j += 1;
    }
    let var = ident_of(trees.get(j)?)?.to_string();
    if !trees.get(j + 1)?.is_punct("=") {
        return None;
    }
    let rhs = &trees[j + 2..];
    match last_call(rhs)? {
        TailCall::Map {
            name,
            children,
            line,
        } => {
            let dir = if name == "alloc_coherent" {
                Dir::Coherent
            } else {
                dir_last_arg(children).unwrap_or(Dir::Unknown)
            };
            Some(Bind {
                var,
                dir,
                buf: dma_buf_ident(children),
                line,
            })
        }
        // Summary-backed binding: the RHS ends with a uniquely-resolved
        // call whose return slot is a fresh mapping.
        TailCall::User {
            name,
            method,
            qualified,
            argc,
            line,
        } => {
            let ic = inter?;
            if qualified {
                return None;
            }
            let [id] = ic.graph.resolve(name, method, argc)[..] else {
                return None;
            };
            match ic.summaries.get(id)?.ret {
                RetEffect::FreshMapped { dir } => Some(Bind {
                    var,
                    dir,
                    // The callee-side buffer identifier is meaningless in
                    // this scope; the sync rule stays quiet here.
                    buf: None,
                    line,
                }),
                _ => None,
            }
        }
    }
}

/// The call an expression *ends* with (modulo `?` / `.unwrap()` /
/// `.expect(…)` suffixes), at top level.
enum TailCall<'t> {
    /// A recognized DMA map call.
    Map {
        name: &'t str,
        children: &'t [Tree],
        line: usize,
    },
    /// Any other call (candidate for summary resolution).
    User {
        name: &'t str,
        method: bool,
        qualified: bool,
        argc: usize,
        line: usize,
    },
}

fn last_call(rhs: &[Tree]) -> Option<TailCall<'_>> {
    let mut found = None;
    let mut k = 0;
    while k + 1 < rhs.len() {
        if let (
            Some(name),
            Some(Tree::Group {
                delim: '(',
                children,
                ..
            }),
        ) = (rhs.get(k).and_then(ident_of), rhs.get(k + 1))
        {
            let method = k > 0 && rhs[k - 1].is_punct(".");
            if method && MAP_METHODS.contains(&name) && dma_call_kind(name, children).is_some() {
                found = Some((
                    k,
                    TailCall::Map {
                        name,
                        children,
                        line: rhs[k].line(),
                    },
                ));
            } else if !CALL_KEYWORDS.contains(&name)
                && !INTRINSICS.contains(&name)
                && !READ_METHODS.contains(&name)
                && !(method && (name == "unwrap" || name == "expect"))
            {
                let qualified = !method && k > 0 && rhs[k - 1].is_punct("::");
                found = Some((
                    k,
                    TailCall::User {
                        name,
                        method,
                        qualified,
                        argc: split_args(children).len(),
                        line: rhs[k].line(),
                    },
                ));
            }
        }
        k += 1;
    }
    let (at, call) = found?;
    // Only panic/try suffixes may follow the call.
    let mut s = at + 2;
    while s < rhs.len() {
        if rhs[s].is_punct("?") {
            s += 1;
        } else if rhs[s].is_punct(".")
            && rhs
                .get(s + 1)
                .and_then(ident_of)
                .is_some_and(|m| m == "unwrap" || m == "expect")
            && matches!(rhs.get(s + 2), Some(Tree::Group { delim: '(', .. }))
        {
            s += 3;
        } else {
            return None;
        }
    }
    Some(call)
}

/// The [`crate::summary::RetEffect`] of a return-position expression, for
/// the summary pass: `FreshMapped` when it ends with a recognized map
/// call or a uniquely-resolved callee whose summary proves one.
pub(crate) fn tail_call_effect(
    trees: &[Tree],
    graph: &CallGraph,
    sums: &[FnSummary],
) -> Option<RetEffect> {
    match last_call(trees)? {
        TailCall::Map { name, children, .. } => {
            let dir = if name == "alloc_coherent" {
                Dir::Coherent
            } else {
                dir_last_arg(children).unwrap_or(Dir::Unknown)
            };
            Some(RetEffect::FreshMapped { dir })
        }
        TailCall::User {
            name,
            method,
            qualified,
            argc,
            ..
        } => {
            if qualified {
                return None;
            }
            match graph.resolve(name, method, argc)[..] {
                [id] => Some(sums.get(id)?.ret),
                _ => None,
            }
        }
    }
}

/// Collects findings with per-function leak dedup (one leak report per
/// handle, at the first program point that witnesses it).
#[derive(Default)]
struct Reporter {
    findings: Vec<Finding>,
    notes: Vec<EscapeNote>,
    leaked: BTreeSet<(String, usize)>,
    seen: BTreeSet<(&'static str, usize, String)>,
    seen_notes: BTreeSet<(usize, String)>,
    function: String,
}

impl Reporter {
    fn push(&mut self, rule: &'static str, line: usize, detail: String) {
        if self.seen.insert((rule, line, detail.clone())) {
            self.findings.push(Finding { rule, line, detail });
        }
    }

    fn leak(&mut self, var: &str, st: &VarState, line: usize, what: &str) {
        if self.leaked.insert((var.to_string(), st.born_line)) {
            self.push(
                "leak-on-exit",
                line,
                format!(
                    "mapping `{var}` (mapped at line {}) can reach {what} without \
                     unmap or ownership transfer",
                    st.born_line
                ),
            );
        }
    }

    fn note(&mut self, line: usize, var: &str, kind: EscapeKind, detail: String) {
        if self.seen_notes.insert((line, var.to_string())) {
            self.notes.push(EscapeNote {
                function: self.function.clone(),
                line,
                var: var.to_string(),
                kind,
                detail,
            });
        }
    }
}

/// The per-slot verdict after consulting a uniquely-resolved callee.
enum SlotVerdict {
    /// The callee provably unmaps on every path and keeps nothing.
    Unmaps,
    /// The callee may sync/read but keeps no ownership; by-ref argument.
    Reads { syncs_cpu: bool },
    /// The callee takes the handle by value and drops it untouched.
    DropsByValue { free_call: bool },
    /// The callee stores, returns, or conditionally releases the handle.
    Keeps,
}

fn slot_verdict(ic: &InterCtx, id: usize, slot: usize) -> SlotVerdict {
    let Some(e) = ic.summaries.get(id).and_then(|s| s.params.get(slot)) else {
        return SlotVerdict::Keeps;
    };
    if e.escapes || e.returned {
        return SlotVerdict::Keeps;
    }
    if e.must_unmap {
        return SlotVerdict::Unmaps;
    }
    if e.may_unmap {
        return SlotVerdict::Keeps; // conditional release: can't track further
    }
    let by_ref = ic.graph.nodes[id]
        .params
        .get(slot)
        .map(|p| p.by_ref)
        .unwrap_or(false);
    if by_ref {
        SlotVerdict::Reads {
            syncs_cpu: e.syncs_cpu,
        }
    } else {
        SlotVerdict::DropsByValue {
            free_call: ic.graph.nodes[id]
                .params
                .first()
                .is_none_or(|p| p.name != "self"),
        }
    }
}

/// Applies one statement's events to `state`; reports findings when `rep`
/// is set. Returns the statement's map binding *unapplied*: the caller
/// applies it to the fallthrough state only, since on the `?` error edge
/// the handle was never mapped.
fn transfer(
    state: &mut State,
    stmt: &Stmt,
    inter: Option<&InterCtx>,
    mut rep: Option<&mut Reporter>,
) -> Option<Bind> {
    if stmt.trees.first().is_some_and(|t| t.is_ident("fn")) {
        return None; // nested fn item: analyzed as its own function
    }
    let bind = detect_bind(&stmt.trees, inter);
    let ret_pos = stmt.is_return || stmt.is_tail;
    let mut evs = Vec::new();
    scan(&stmt.trees, false, &mut evs);
    for ev in &evs {
        match ev {
            Ev::Call { kind, args, line } => match kind {
                CallKind::Map => {}
                CallKind::Unmap => {
                    for a in args {
                        if let Some(st) = state.get_mut(a) {
                            if st.bits & UNMAPPED != 0 {
                                if let Some(r) = rep.as_deref_mut() {
                                    r.push(
                                        "double-unmap",
                                        *line,
                                        format!("handle `{a}` already unmapped on some path reaching this unmap"),
                                    );
                                }
                            }
                            st.bits = UNMAPPED;
                        }
                    }
                }
                CallKind::SyncCpu => {
                    for a in args {
                        if let Some(st) = state.get_mut(a) {
                            st.bits |= SYNCED;
                        }
                    }
                }
                CallKind::SyncDev => {
                    for a in args {
                        if let Some(st) = state.get_mut(a) {
                            st.bits &= !SYNCED;
                        }
                    }
                }
            },
            Ev::Proj { var, line } => {
                if let Some(st) = state.get(var) {
                    if st.bits & UNMAPPED != 0 {
                        if let Some(r) = rep.as_deref_mut() {
                            r.push(
                                "use-after-unmap",
                                *line,
                                format!("handle `{var}` projected after unmap on some path (stale IOVA/token)"),
                            );
                        }
                    }
                }
            }
            Ev::Read { head, line } => {
                if let Some(r) = rep.as_deref_mut() {
                    for (var, st) in state.iter() {
                        let hit = st.buf.as_ref().is_some_and(|b| head.iter().any(|h| h == b));
                        if hit
                            && st.bits & MAPPED != 0
                            && st.bits & SYNCED == 0
                            && st.dir.needs_cpu_sync()
                        {
                            r.push(
                                "sync-before-cpu-read",
                                *line,
                                format!(
                                    "CPU read of streaming buffer `{}` while `{var}` is mapped \
                                     {:?} without sync_for_cpu",
                                    st.buf.as_deref().unwrap_or("?"),
                                    st.dir
                                ),
                            );
                        }
                    }
                }
            }
            Ev::UserCall {
                name,
                method,
                qualified,
                args,
                line,
            } => {
                let resolvable = !*qualified
                    && !INTRINSICS.contains(&name.as_str())
                    && !READ_METHODS.contains(&name.as_str());
                let unique = inter.filter(|_| resolvable).and_then(|ic| {
                    let c = ic.graph.resolve(name, *method, args.len());
                    match c[..] {
                        [id] => Some((ic, id)),
                        _ => None,
                    }
                });
                for (k, arg) in args.iter().enumerate() {
                    let Some(a) = arg else { continue };
                    if bind.as_ref().is_some_and(|b| &b.var == a) || !state.contains_key(a) {
                        continue;
                    }
                    match unique {
                        Some((ic, id)) => {
                            let slot = k + usize::from(*method);
                            match slot_verdict(ic, id, slot) {
                                SlotVerdict::Unmaps => {
                                    if let Some(st) = state.get_mut(a) {
                                        if st.bits & UNMAPPED != 0 {
                                            if let Some(r) = rep.as_deref_mut() {
                                                r.push(
                                                    "double-unmap",
                                                    *line,
                                                    format!(
                                                        "handle `{a}` already unmapped on some \
                                                         path is unmapped again via `{name}`"
                                                    ),
                                                );
                                            }
                                        }
                                        st.bits = UNMAPPED;
                                    }
                                }
                                SlotVerdict::Reads { syncs_cpu } => {
                                    if syncs_cpu {
                                        if let Some(st) = state.get_mut(a) {
                                            st.bits |= SYNCED;
                                        }
                                    }
                                    // Ownership stays here: keep tracking,
                                    // the leak obligation is still ours.
                                }
                                SlotVerdict::DropsByValue { free_call } => {
                                    if free_call {
                                        if let Some(st) = state.get(a).cloned() {
                                            if st.bits & MAPPED != 0 {
                                                if let Some(r) = rep.as_deref_mut() {
                                                    if r.leaked.insert((a.clone(), st.born_line)) {
                                                        r.push(
                                                            "leak-on-exit",
                                                            *line,
                                                            format!(
                                                                "mapping `{a}` (mapped at line {}) \
                                                                 moved into `{name}`, which drops \
                                                                 it still mapped",
                                                                st.born_line
                                                            ),
                                                        );
                                                    }
                                                }
                                            }
                                        }
                                        state.remove(a);
                                    } else {
                                        // Method resolution is name+arity
                                        // only: too weak to blame a drop.
                                        if let Some(r) = rep.as_deref_mut() {
                                            if !ret_pos {
                                                r.note(
                                                    *line,
                                                    a,
                                                    EscapeKind::Moved,
                                                    format!("moved into method `{name}`"),
                                                );
                                            }
                                        }
                                        state.remove(a);
                                    }
                                }
                                SlotVerdict::Keeps => {
                                    if let Some(r) = rep.as_deref_mut() {
                                        if !ret_pos {
                                            r.note(
                                                *line,
                                                a,
                                                EscapeKind::Moved,
                                                format!(
                                                    "passed to `{name}`, which stores, returns, \
                                                     or conditionally releases it"
                                                ),
                                            );
                                        }
                                    }
                                    state.remove(a);
                                }
                            }
                        }
                        None => {
                            // Unresolved (or ambiguous) callee: ownership
                            // transfer, declared as a note when the
                            // interprocedural pass is on.
                            if inter.is_some() && !ret_pos && resolvable {
                                if let Some(r) = rep.as_deref_mut() {
                                    r.note(
                                        *line,
                                        a,
                                        EscapeKind::UnknownCallee,
                                        format!("passed to unresolved callee `{name}`"),
                                    );
                                }
                            }
                            state.remove(a);
                        }
                    }
                }
            }
            Ev::ClosureCapture { vars, line } => {
                for v in vars {
                    if bind.as_ref().is_some_and(|b| &b.var == v) || !state.contains_key(v) {
                        continue;
                    }
                    if inter.is_some() {
                        if let Some(r) = rep.as_deref_mut() {
                            r.note(
                                *line,
                                v,
                                EscapeKind::ClosureCapture,
                                "captured by a closure body".to_string(),
                            );
                        }
                    }
                    state.remove(v);
                }
            }
            Ev::Bare { var } => {
                // Ownership transfer: stop tracking. The bind's own var
                // is not yet live on this statement.
                if bind.as_ref().is_none_or(|b| &b.var != var) && state.contains_key(var) {
                    if inter.is_some() && !ret_pos {
                        if let Some(r) = rep.as_deref_mut() {
                            r.note(
                                stmt.line,
                                var,
                                EscapeKind::Moved,
                                "stored or aliased outside the tracked scope".to_string(),
                            );
                        }
                    }
                    state.remove(var);
                }
            }
        }
    }
    bind
}

fn apply_bind(state: &mut State, b: Bind) {
    state.insert(
        b.var,
        VarState {
            bits: MAPPED,
            dir: b.dir,
            buf: b.buf,
            born_line: b.line,
        },
    );
}

fn leak_check(state: &State, line: usize, what: &str, rep: &mut Reporter) {
    for (var, st) in state.iter() {
        if st.bits & MAPPED != 0 {
            rep.leak(var, st, line, what);
        }
    }
}

/// Processes block `b` from in-state `st`. Returns the fallthrough
/// out-state and, for a `?` statement, the implicit error-edge out-state
/// (which excludes the statement's own binding: on the error path the
/// handle was never mapped).
fn block_out(
    cfg: &Cfg,
    b: usize,
    mut st: State,
    inter: Option<&InterCtx>,
    mut rep: Option<&mut Reporter>,
) -> (State, Option<State>) {
    let Some(stmt) = &cfg.blocks[b].stmt else {
        return (st, None);
    };
    let bind = transfer(&mut st, stmt, inter, rep.as_deref_mut());
    let mut try_out = None;
    if stmt.has_try {
        if let Some(r) = rep.as_deref_mut() {
            leak_check(&st, stmt.line, "the `?` error path", r);
        }
        try_out = Some(st.clone());
    }
    if stmt.is_return {
        if let Some(r) = rep {
            leak_check(&st, stmt.line, "this return", r);
        }
    }
    if let Some(bd) = bind {
        apply_bind(&mut st, bd);
    }
    (st, try_out)
}

/// Runs the typestate pass over one function's CFG.
fn check_cfg(cfg: &Cfg, inter: Option<&InterCtx>, rep: &mut Reporter) {
    let n = cfg.blocks.len();
    let mut ins: Vec<State> = vec![State::new(); n];
    // Fixpoint: propagate out-states along edges until stable.
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 8 * n + 64 {
        changed = false;
        rounds += 1;
        for b in 0..n {
            let (out, try_out) = block_out(cfg, b, ins[b].clone(), inter, None);
            if let Some(t) = try_out {
                if join_into(&mut ins[cfg.exit], &t) {
                    changed = true;
                }
            }
            for &s in &cfg.blocks[b].succs {
                if join_into(&mut ins[s], &out) {
                    changed = true;
                }
            }
        }
    }
    // Reporting pass over the converged in-states, in block order. The
    // exit node goes last so edge-level reports (`?`, `return`) win the
    // per-handle leak dedup and anchor the finding at the leaking edge.
    for (b, in_state) in ins.iter().enumerate() {
        if b == cfg.exit {
            continue;
        }
        block_out(cfg, b, in_state.clone(), inter, Some(rep));
    }
    // Handles still mapped at the exit join that no explicit edge already
    // reported (e.g. a fallthrough that ends the function with the handle
    // live) are anchored at the map site.
    let exit_state = ins[cfg.exit].clone();
    for (var, vs) in exit_state.iter() {
        if vs.bits & MAPPED != 0 {
            rep.leak(var, vs, vs.born_line, "function exit");
        }
    }
}

/// Runs the DMA protocol checker over every non-test function in a
/// prepared file (intraprocedural mode — no call resolution).
pub fn check_file(prep: &Prep) -> Vec<Finding> {
    check_file_inter(prep, None).0
}

/// Runs the DMA protocol checker over a prepared file, resolving calls
/// through `inter` when given. Returns the findings plus the handle
/// escape notes (always empty without `inter`).
pub fn check_file_inter(prep: &Prep, inter: Option<&InterCtx>) -> (Vec<Finding>, Vec<EscapeNote>) {
    let tokens = crate::lexer::tokenize(&prep.blank);
    let trees = build_trees(&tokens);
    let mut rep = Reporter::default();
    for f in extract_functions(prep, &trees) {
        let cfg = Cfg::build(&f.body);
        rep.function = f.name.clone();
        check_cfg(&cfg, inter, &mut rep);
    }
    rep.findings.sort_by_key(|f| (f.line, f.rule));
    rep.notes.sort_by_key(|n| n.line);
    (rep.findings, rep.notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    fn run(src: &str) -> Vec<Finding> {
        check_file(&prep("x.rs", src))
    }

    fn rules(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.rule).collect()
    }

    /// Runs the checker in interprocedural mode over one file.
    fn run_inter(src: &str) -> (Vec<Finding>, Vec<EscapeNote>) {
        let p = prep("x.rs", src);
        let graph = CallGraph::build(&[(p.clone(), "x".to_string())]);
        let summaries = crate::summary::compute(&graph);
        let inter = InterCtx {
            graph: &graph,
            summaries: &summaries,
        };
        check_file_inter(&p, Some(&inter))
    }

    #[test]
    fn clean_map_unmap_is_silent() {
        let src = "fn f(engine: &E, ctx: &mut C) -> Result<(), E> {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice)?;\n\
                   post(m.iova.get());\n\
                   engine.unmap(ctx, m)?;\n\
                   Ok(())\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn use_after_unmap_is_flagged() {
        let src = "fn f(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   poke(m.iova.get());\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "use-after-unmap");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn leak_on_try_edge_is_flagged() {
        let src = "fn f(engine: &E, ctx: &mut C) -> Result<(), E> {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice)?;\n\
                   helper(ctx)?;\n\
                   engine.unmap(ctx, m)?;\n\
                   Ok(())\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "leak-on-exit");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn leak_on_early_return_is_flagged() {
        let src = "fn f(engine: &E, ctx: &mut C, bad: bool) -> Result<(), E> {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   if bad {\n\
                   return Err(E::Bad);\n\
                   }\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   Ok(())\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "leak-on-exit");
    }

    #[test]
    fn leak_at_fallthrough_exit_is_flagged() {
        let src = "fn f(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   touch(m.iova.get());\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "leak-on-exit");
    }

    #[test]
    fn ownership_transfer_ends_tracking() {
        // Returned and pushed handles are transfers, not leaks.
        let src = "fn f(engine: &E, ctx: &mut C) -> Result<M, E> {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice)?;\n\
                   Ok(m)\n\
                   }\n\
                   fn g(engine: &E, ctx: &mut C, out: &mut Vec<M>) {\n\
                   let rx = engine.alloc_coherent(ctx, 4096).expect(\"ring\");\n\
                   nic.attach(&rx);\n\
                   out.push(rx);\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn double_unmap_along_a_path_is_flagged() {
        let src = "fn f(engine: &E, ctx: &mut C, early: bool) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   if early {\n\
                   engine.unmap(ctx, m).expect(\"u1\");\n\
                   }\n\
                   engine.unmap(ctx, m).expect(\"u2\");\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "double-unmap");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn cpu_read_of_streaming_buffer_needs_sync() {
        let bad = "fn f(engine: &E, mem: &M, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::FromDevice).expect(\"m\");\n\
                   let got = mem.read_vec(skb, 64);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let f = run(bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "sync-before-cpu-read");
        assert_eq!(f[0].line, 3);

        let good = "fn f(engine: &E, mem: &M, ctx: &mut C) {\n\
                    let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::FromDevice).expect(\"m\");\n\
                    engine.sync_for_cpu(ctx, &m);\n\
                    let got = mem.read_vec(skb, 64);\n\
                    engine.unmap(ctx, m).expect(\"u\");\n\
                    }\n";
        assert_eq!(rules(good), Vec::<&str>::new());
    }

    #[test]
    fn read_after_unmap_needs_no_sync() {
        // unmap performs the CPU handoff; reading afterwards is the
        // normal driver pattern (netsim's rx path).
        let src = "fn f(engine: &E, mem: &M, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::FromDevice).expect(\"m\");\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   let got = mem.read_vec(skb, 64);\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn to_device_reads_need_no_sync() {
        let src = "fn f(engine: &E, mem: &M, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   let echo = mem.read_vec(skb, 64);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn iterator_and_page_table_maps_are_not_tracked() {
        let src = "fn f(items: &[u32], pt: &mut Pt, ctx: &mut C) {\n\
                   let v: Vec<u32> = items.iter().map(|x| x + 1).collect();\n\
                   let e = pt.map(page, pfn, perms);\n\
                   let h = self.huge.map(ctx, &self.zc_iova, buf, dir.perms());\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn map_consumed_by_match_or_closure_is_untracked() {
        let src = "fn f(engine: &E, ctx: &mut C) -> Result<M, E> {\n\
                   match self.map(ctx, buf, dir) {\n\
                   Ok(m) => out.push(m),\n\
                   Err(e) => roll(e),\n\
                   }\n\
                   let m = obs::profile::scope(ctx, |ctx| self.inner.map(ctx, buf, dir))?;\n\
                   Ok(m)\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn loop_body_map_unmap_converges_clean() {
        let src = "fn f(engine: &E, ctx: &mut C, n: u32) {\n\
                   for i in 0..n {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   fire(m.iova.get());\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn unmap_on_both_if_arms_is_clean() {
        let src = "fn f(engine: &E, ctx: &mut C, fast: bool) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   if fast {\n\
                   engine.unmap(ctx, m).expect(\"a\");\n\
                   } else {\n\
                   engine.unmap(ctx, m).expect(\"b\");\n\
                   }\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n\
                   fn leaky(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   }\n\
                   }\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    // ---- interprocedural mode ----

    #[test]
    fn leak_across_uses_only_helper_is_flagged() {
        let src = "fn caller(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   touch_stats(&m);\n\
                   }\n\
                   fn touch_stats(m: &M) {\n\
                   count(m.len);\n\
                   }\n";
        // Intraprocedural: ownership transfer, silent.
        assert_eq!(rules(src), Vec::<&str>::new());
        // Interprocedural: the helper only reads; the leak is ours.
        let (f, _) = run_inter(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "leak-on-exit");
    }

    #[test]
    fn helper_roundtrip_with_unmap_is_clean() {
        let src = "fn caller(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   log_mapping(&m);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn log_mapping(m: &M) {\n\
                   note(m.iova);\n\
                   }\n";
        let (f, notes) = run_inter(src);
        assert_eq!(f, Vec::new(), "{f:?}");
        assert_eq!(notes, Vec::new(), "{notes:?}");
    }

    #[test]
    fn use_after_unmap_through_returned_handle_and_helper_unmap() {
        let src = "fn caller(engine: &E, ctx: &mut C) {\n\
                   let m = make_rx(engine, ctx);\n\
                   finish(engine, ctx, m);\n\
                   fire(m.iova.get());\n\
                   }\n\
                   fn make_rx(engine: &E, ctx: &mut C) -> M {\n\
                   engine.map(ctx, DmaBuf::new(buf, 64), DmaDirection::FromDevice).expect(\"m\")\n\
                   }\n\
                   fn finish(engine: &E, ctx: &mut C, m: M) {\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        // Intraprocedural: nothing is even tracked.
        assert_eq!(rules(src), Vec::<&str>::new());
        let (f, _) = run_inter(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "use-after-unmap");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn helper_unmap_then_caller_unmap_is_double() {
        let src = "fn caller(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   release(engine, ctx, m);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn release(engine: &E, ctx: &mut C, m: M) {\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let (f, _) = run_inter(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "double-unmap");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn closure_capture_is_a_note_not_a_violation() {
        let src = "fn caller(engine: &E, ctx: &mut C, defer: &mut Vec<F>) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   defer.push(Box::new(move || consume(m)));\n\
                   }\n";
        let (f, notes) = run_inter(src);
        assert_eq!(f, Vec::new(), "{f:?}");
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert_eq!(notes[0].kind, EscapeKind::ClosureCapture);
        assert_eq!(notes[0].var, "m");
        assert_eq!(notes[0].function, "caller");
    }

    #[test]
    fn unknown_callee_becomes_a_note() {
        let src = "fn caller(engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   ring.stash(&m);\n\
                   }\n";
        let (f, notes) = run_inter(src);
        assert_eq!(f, Vec::new(), "{f:?}");
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert_eq!(notes[0].kind, EscapeKind::UnknownCallee);
    }

    #[test]
    fn returned_handles_stay_silent_interprocedurally() {
        // `Ok(m)` in tail position is the ownership hand-off to the
        // caller — the caller-side summary check covers it, not a note.
        let src = "fn make(engine: &E, ctx: &mut C) -> Result<M, E> {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice)?;\n\
                   Ok(m)\n\
                   }\n";
        let (f, notes) = run_inter(src);
        assert_eq!(f, Vec::new(), "{f:?}");
        assert_eq!(notes, Vec::new(), "{notes:?}");
    }
}
