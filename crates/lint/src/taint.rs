//! The device-taint pass: the static mirror of `crates/attacks`.
//!
//! Under the paper's threat model everything a device can write is
//! attacker-controlled, so any value the CPU loads out of a mapped
//! `FromDevice`/`Bidirectional` buffer is **tainted**. This pass marks
//! such loads as sources, propagates taint through local `let` bindings
//! (flow-insensitively, within one function), and flags taint reaching a
//! sink with no intervening bounds check:
//!
//! | sink                | pattern                                     |
//! |---------------------|---------------------------------------------|
//! | index               | `table[…tainted…]`                          |
//! | loop bound          | `for _ in …tainted… { }` range head         |
//! | `PhysAddr` arith    | tainted inside `PhysAddr…(…)` arguments     |
//! | read/write length   | tainted argument of a `SimMemory` accessor  |
//!
//! Sanitizers: a comparison over the tainted value in an `if`/`while`
//! condition (`idx < table.len()`), or clamping at the definition site
//! (`.min(…)`, `.clamp(…)`, `% len`). With summaries, a call returning
//! the payload of a device-reading helper (`reads_device_data`) is also a
//! source. Findings use the waivable `device-taint` rule.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::cfg::{build_trees, extract_functions, Cfg, Stmt, Tree};
use crate::lexer::Prep;
use crate::summary::FnSummary;
use crate::typestate::{detect_bind, scan, Ev, Finding, READ_METHODS};

/// Aggregate numbers for the JSON report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintStats {
    /// Device-load statements that introduced taint.
    pub sources: usize,
    /// Distinct tainted variables (after propagation).
    pub tainted_vars: usize,
    /// Tainted variables neutralized by a bounds check or clamp.
    pub sanitized_vars: usize,
}

impl TaintStats {
    /// Accumulates another file's stats.
    pub fn absorb(&mut self, other: TaintStats) {
        self.sources += other.sources;
        self.tainted_vars += other.tainted_vars;
        self.sanitized_vars += other.sanitized_vars;
    }
}

fn ident_of(t: &Tree) -> Option<&str> {
    match t {
        Tree::Tok(tok) if tok.is_ident => Some(&tok.text),
        _ => None,
    }
}

/// `let [mut] var = …` binding variable of a statement.
fn let_var(trees: &[Tree]) -> Option<&str> {
    if !trees.first()?.is_ident("let") {
        return None;
    }
    let mut j = 1;
    if trees.get(j)?.is_ident("mut") {
        j += 1;
    }
    let var = ident_of(trees.get(j)?)?;
    trees.get(j + 1)?.is_punct("=").then_some(var)
}

/// Any ident from `vars` mentioned anywhere in `trees`.
fn mentions(trees: &[Tree], vars: &BTreeSet<String>) -> bool {
    trees.iter().any(|t| match t {
        Tree::Tok(tok) => tok.is_ident && vars.contains(&tok.text),
        Tree::Group { children, .. } => mentions(children, vars),
    })
}

/// The definition site clamps the value: `.min(…)`, `.clamp(…)`, `% …`.
fn clamped_at_definition(trees: &[Tree]) -> bool {
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Tok(tok) => {
                if tok.text == "%" {
                    return true;
                }
                if tok.text == "."
                    && trees
                        .get(i + 1)
                        .and_then(ident_of)
                        .is_some_and(|m| m == "min" || m == "clamp")
                    && matches!(trees.get(i + 2), Some(Tree::Group { delim: '(', .. }))
                {
                    return true;
                }
            }
            Tree::Group { children, .. } => {
                if clamped_at_definition(children) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Collects the head region of every `kw`-started block (`if`/`while`
/// conditions, `for` heads): the tokens between the keyword and the next
/// `{` group at the same level. Recurses into all groups.
fn head_regions<'t>(trees: &'t [Tree], kws: &[&str], out: &mut Vec<&'t [Tree]>) {
    let mut i = 0;
    while i < trees.len() {
        if kws.iter().any(|k| trees[i].is_ident(k)) {
            let mut j = i + 1;
            while j < trees.len() && !matches!(trees[j], Tree::Group { delim: '{', .. }) {
                j += 1;
            }
            out.push(&trees[i + 1..j]);
            i = j;
            continue; // the body group recurses on the next iteration
        }
        if let Tree::Group { children, .. } = &trees[i] {
            head_regions(children, kws, out);
        }
        i += 1;
    }
}

/// Comparison puncts that constitute a bounds check when a tainted value
/// sits in the same condition (`<=`/`>=` lex as two puncts, so `<`, `>`
/// and `==` cover them).
fn has_comparison(trees: &[Tree]) -> bool {
    trees.iter().any(|t| match t {
        Tree::Tok(tok) => !tok.is_ident && matches!(tok.text.as_str(), "<" | ">" | "=="),
        Tree::Group { children, .. } => has_comparison(children),
    })
}

/// Tainted idents present in `trees`, recursively, deduplicated.
fn tainted_in(trees: &[Tree], tainted: &BTreeSet<String>, out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Tok(tok)
                if tok.is_ident && tainted.contains(&tok.text) && !out.contains(&tok.text) =>
            {
                out.push(tok.text.clone());
            }
            Tree::Group { children, .. } => tainted_in(children, tainted, out),
            _ => {}
        }
    }
}

/// Runs the taint pass over every non-test function in a prepared file.
/// With `inter`, uniquely-resolved calls to device-reading helpers
/// (`reads_device_data`) also act as sources.
pub fn check_file(
    prep: &Prep,
    inter: Option<(&CallGraph, &[FnSummary])>,
) -> (Vec<Finding>, TaintStats) {
    let tokens = crate::lexer::tokenize(&prep.blank);
    let trees = build_trees(&tokens);
    let mut findings = Vec::new();
    let mut stats = TaintStats::default();
    for f in extract_functions(prep, &trees) {
        let cfg = Cfg::build(&f.body);
        let stmts: Vec<&Stmt> = cfg
            .blocks
            .iter()
            .filter_map(|b| b.stmt.as_ref())
            .filter(|s| !s.trees.first().is_some_and(|t| t.is_ident("fn")))
            .collect();
        check_fn(&f.body, &stmts, inter, &mut findings, &mut stats);
    }
    findings.sort_by_key(|f| (f.line, f.detail.clone()));
    findings.dedup();
    (findings, stats)
}

fn check_fn(
    body: &[Tree],
    stmts: &[&Stmt],
    inter: Option<(&CallGraph, &[FnSummary])>,
    findings: &mut Vec<Finding>,
    stats: &mut TaintStats,
) {
    // Device-writable buffers bound in this function.
    let mut device_bufs: BTreeSet<String> = BTreeSet::new();
    for stmt in stmts {
        if let Some(b) = detect_bind(&stmt.trees, None) {
            if b.dir.needs_cpu_sync() {
                if let Some(buf) = b.buf {
                    device_bufs.insert(buf);
                }
            }
        }
    }

    // Sources: `let v = …read…(device_buf, …)` and, with summaries,
    // `let v = helper(…)` where the helper reads device data.
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for stmt in stmts {
        let Some(var) = let_var(&stmt.trees) else {
            continue;
        };
        if clamped_at_definition(&stmt.trees) {
            continue;
        }
        let mut evs = Vec::new();
        scan(&stmt.trees, false, &mut evs);
        let mut is_source = false;
        for ev in &evs {
            match ev {
                Ev::Read { head, .. } if head.iter().any(|h| device_bufs.contains(h)) => {
                    is_source = true;
                }
                Ev::UserCall {
                    name,
                    method,
                    qualified,
                    args,
                    ..
                } if !qualified => {
                    if let Some((graph, sums)) = inter {
                        if let [id] = graph.resolve(name, *method, args.len())[..] {
                            if sums.get(id).is_some_and(|s| s.reads_device_data) {
                                is_source = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if is_source && tainted.insert(var.to_string()) {
            stats.sources += 1;
        }
    }
    if tainted.is_empty() {
        return;
    }

    // Propagation: a let whose RHS mentions a tainted value taints the
    // binding, unless the definition clamps it.
    let mut rounds = 0;
    loop {
        let mut changed = false;
        for stmt in stmts {
            let Some(var) = let_var(&stmt.trees) else {
                continue;
            };
            if tainted.contains(var) || clamped_at_definition(&stmt.trees) {
                continue;
            }
            if mentions(&stmt.trees[1..], &tainted) {
                tainted.insert(var.to_string());
                changed = true;
            }
        }
        rounds += 1;
        if !changed || rounds > stmts.len() + 2 {
            break;
        }
    }
    stats.tainted_vars += tainted.len();

    // Sanitizers: a comparison over the tainted value in an `if`/`while`
    // condition neutralizes it for the whole function.
    let mut conds = Vec::new();
    head_regions(body, &["if", "while"], &mut conds);
    let mut sanitized: BTreeSet<String> = BTreeSet::new();
    for cond in &conds {
        if has_comparison(cond) {
            let mut hit = Vec::new();
            tainted_in(cond, &tainted, &mut hit);
            sanitized.extend(hit);
        }
    }
    stats.sanitized_vars += sanitized.len();
    let live: BTreeSet<String> = tainted.difference(&sanitized).cloned().collect();
    if live.is_empty() {
        return;
    }

    // Sinks.
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut flag = |findings: &mut Vec<Finding>, line: usize, var: &str, sink: &str| {
        if seen.insert((line, var.to_string())) {
            findings.push(Finding {
                rule: "device-taint",
                line,
                detail: format!(
                    "device-tainted value `{var}` flows into {sink} without a bounds check"
                ),
            });
        }
    };
    // Loop bounds: a tainted value in a `for` range head.
    let mut for_heads = Vec::new();
    head_regions(body, &["for"], &mut for_heads);
    for head in &for_heads {
        if head.iter().any(|t| t.is_punct("..")) {
            let mut hit = Vec::new();
            tainted_in(head, &live, &mut hit);
            let line = head.first().map(Tree::line).unwrap_or(0);
            for var in hit {
                flag(findings, line, &var, "a loop bound");
            }
        }
    }
    sink_walk(body, &live, &mut |line, var, sink| {
        flag(findings, line, var, sink)
    });
}

/// Recursive scan for index, `PhysAddr`, and accessor-argument sinks.
fn sink_walk(trees: &[Tree], live: &BTreeSet<String>, flag: &mut impl FnMut(usize, &str, &str)) {
    let mut i = 0;
    while i < trees.len() {
        // Index sink: `ident [ …tainted… ]` (the ident guard keeps
        // `vec![…]` and `#[…]` out).
        if trees.get(i).and_then(ident_of).is_some() {
            if let Some(Tree::Group {
                delim: '[',
                children,
                open_line,
            }) = trees.get(i + 1)
            {
                let mut hit = Vec::new();
                tainted_in(children, live, &mut hit);
                for var in hit {
                    flag(*open_line, &var, "an index expression");
                }
            }
        }
        // PhysAddr sink: tainted inside the argument group of a
        // `PhysAddr`-path call (`PhysAddr::new(base + off)`, …).
        if trees.get(i).and_then(ident_of) == Some("PhysAddr") {
            for t in trees.iter().skip(i + 1).take(4) {
                if let Tree::Group {
                    delim: '(',
                    children,
                    open_line,
                } = t
                {
                    let mut hit = Vec::new();
                    tainted_in(children, live, &mut hit);
                    for var in hit {
                        flag(*open_line, &var, "PhysAddr arithmetic");
                    }
                    break;
                }
            }
        }
        // Accessor-length sink: tainted argument of a memory accessor
        // (`mem.read_vec(addr, len)`, `mem.write(addr, data)`, …).
        if trees[i].is_punct(".") {
            if let (
                Some(name),
                Some(Tree::Group {
                    delim: '(',
                    children,
                    open_line,
                }),
            ) = (trees.get(i + 1).and_then(ident_of), trees.get(i + 2))
            {
                if READ_METHODS.contains(&name) || name == "write" || name == "write_vec" {
                    let mut hit = Vec::new();
                    tainted_in(children, live, &mut hit);
                    for var in hit {
                        flag(*open_line, &var, "a memory-accessor argument");
                    }
                }
            }
        }
        if let Tree::Group { children, .. } = &trees[i] {
            sink_walk(children, live, flag);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::prep;

    fn run(src: &str) -> Vec<Finding> {
        check_file(&prep("x.rs", src), None).0
    }

    #[test]
    fn taint_to_index_without_check_is_flagged() {
        let src = "fn rx(engine: &E, mem: &M, ctx: &mut C, table: &[u32]) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   engine.sync_for_cpu(ctx, &m);\n\
                   let data = mem.read_vec(frame, 256);\n\
                   let idx = head(&data);\n\
                   let x = table[idx];\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn head(d: &[u8]) -> usize { 0 }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "device-taint");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn bounds_checked_taint_is_clean() {
        let src = "fn rx(engine: &E, mem: &M, ctx: &mut C, table: &[u32]) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let data = mem.read_vec(frame, 256);\n\
                   let idx = head(&data);\n\
                   if idx < table.len() {\n\
                   let x = table[idx];\n\
                   }\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn head(d: &[u8]) -> usize { 0 }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn clamped_definition_is_clean() {
        let src = "fn rx(mem: &M, engine: &E, ctx: &mut C, table: &[u32]) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let data = mem.read_vec(frame, 256);\n\
                   let idx = head(&data) % table.len();\n\
                   let x = table[idx];\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn head(d: &[u8]) -> usize { 0 }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn to_device_buffers_do_not_taint() {
        let src = "fn tx(mem: &M, engine: &E, ctx: &mut C, table: &[u32]) {\n\
                   let m = engine.map(ctx, DmaBuf::new(skb, 64), DmaDirection::ToDevice).expect(\"m\");\n\
                   let echo = mem.read_vec(skb, 64);\n\
                   let x = table[echo];\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn tainted_loop_bound_is_flagged() {
        let src = "fn rx(mem: &M, engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::Bidirectional).expect(\"m\");\n\
                   let count = mem.read_vec(frame, 4);\n\
                   for i in 0..count {\n\
                   step(i);\n\
                   }\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n\
                   fn step(i: usize) {}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].detail.contains("loop bound"), "{f:?}");
    }

    #[test]
    fn tainted_accessor_length_is_flagged() {
        let src = "fn rx(mem: &M, engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let len = mem.read_vec(frame, 4);\n\
                   let body = mem.read_vec(frame, len);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].detail.contains("memory-accessor"), "{f:?}");
    }

    #[test]
    fn tainted_phys_addr_arith_is_flagged() {
        let src = "fn rx(mem: &M, engine: &E, ctx: &mut C) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let off = mem.read_vec(frame, 8);\n\
                   let target = PhysAddr::new(base + off);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].detail.contains("PhysAddr"), "{f:?}");
    }

    #[test]
    fn summary_backed_source_taints_helper_result() {
        let src = "fn rx_one(mem: &M, engine: &E, ctx: &mut C) -> usize {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let data = mem.read_vec(frame, 256);\n\
                   engine.unmap(ctx, m).expect(\"u\");\n\
                   first(&data)\n\
                   }\n\
                   fn caller(mem: &M, engine: &E, ctx: &mut C, table: &[u32]) {\n\
                   let idx = rx_one(mem, engine, ctx);\n\
                   let x = table[idx];\n\
                   }\n\
                   fn first(d: &[u8]) -> usize { 0 }\n";
        let p = prep("x.rs", src);
        let graph = CallGraph::build(&[(p.clone(), "x".to_string())]);
        let sums = crate::summary::compute(&graph);
        let (f, _) = check_file(&p, Some((&graph, &sums)));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "device-taint");
        assert_eq!(f[0].line, 9);
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\nmod t {\n\
                   fn f(mem: &M, engine: &E, ctx: &mut C, table: &[u32]) {\n\
                   let m = engine.map(ctx, DmaBuf::new(frame, 256), DmaDirection::FromDevice).expect(\"m\");\n\
                   let data = mem.read_vec(frame, 256);\n\
                   let x = table[data];\n\
                   }\n\
                   }\n";
        assert_eq!(run(src), Vec::new());
    }
}
