// lint: allow(ambient-io) — the workspace walk must read source files and manifests
//! A pure-std workspace lint (no `syn`, no external dependencies).
//!
//! The crate is built around a small in-tree Rust front-end
//! ([`lexer`]: byte-aligned stripped views + token stream, [`cfg`]:
//! token trees and per-function control-flow graphs) shared by every
//! pass, so there is exactly one tokenizer, one `#[cfg(test)]` mask, and
//! one file walk. On top of it:
//!
//! 1. **House style rules** ([`rules::style`]) — no `unwrap()`/`expect(`
//!    outside `#[cfg(test)]`, no raw `PhysAddr` arithmetic outside
//!    `memsim`, no `std::process`/`std::net`/`std::fs`, no
//!    `Ordering::Relaxed` outside `crates/obs`, and no external
//!    dependencies in any manifest (the workspace builds offline).
//! 2. **Lock order** ([`rules::lock_order`]) — extracts every
//!    instrumented lock site, builds the nested-acquisition graph, and
//!    flags cycles; the site inventory feeds the model checker's
//!    `known_locks`.
//! 3. **DMA-API protocol, interprocedural** ([`rules::protocol`],
//!    [`typestate`], [`callgraph`], [`summary`]) — a typestate dataflow
//!    over each function's CFG tracking DMA handles
//!    (`Unmapped → Mapped → SyncedForCpu → Unmapped`): use-after-unmap,
//!    leak-on-exit, double-unmap, sync-before-cpu-read — the static
//!    mirror of dmasan's runtime rules. A workspace call graph feeds
//!    bottom-up per-function effect summaries (computed over SCCs with a
//!    fixpoint for recursion), so handles passed to, returned from, or
//!    unmapped inside helpers are checked at call sites; handles the
//!    lattice genuinely loses become structured escape notes.
//! 4. **Device taint** ([`taint`]) — values read off device-writable
//!    mapped buffers flowing into an index, loop bound, accessor length,
//!    or `PhysAddr` arithmetic without a bounds check.
//! 5. **Unsafe audit** ([`rules::unsafe_audit`]) — every `unsafe` must
//!    carry a `// SAFETY:` comment; the inventory (plus which crates
//!    `#![forbid(unsafe_code)]`) is exported like the lock-order report.
//!
//! Every rule is waiver-compatible (`// lint: allow(<rule>) — <reason>`,
//! reason mandatory) — and waivers are themselves audited: a reasoned
//! waiver whose rule no longer finds anything unfiltered is a
//! `dead-waiver` finding. The runner exits 0 (clean) / 1 (findings) /
//! 2 (scan failure) as before. Run via `cargo run --bin lint`
//! (`--fast` for style-only, `--json <path>` for the machine-readable
//! report, `--budget-ms <n>` to fail on blown wall clock).
#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod cfg;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod summary;
pub mod taint;
pub mod typestate;

pub use callgraph::{build_workspace_graph, CallGraph, FnNode};
pub use lexer::{aligned_views, strip_code, test_region_mask, Prep};
pub use report::{json_report, rule_summary, LintViolation};
pub use rules::lock_order::{lock_order_analysis, LockEdge, LockOrderReport, LockSite};
pub use rules::protocol::{EscapeExport, ProtocolAnalysis};
pub use rules::style::{lint_manifest, lint_source, FileContext};
pub use rules::unsafe_audit::{unsafe_audit_analysis, UnsafeReport, UnsafeSite};
pub use rules::{has_rule_waiver, IO_WAIVER, PANIC_WAIVER, RELAXED_WAIVER};
pub use summary::{FnSummary, ParamEffect, RetEffect};
pub use taint::TaintStats;
pub use typestate::{EscapeKind, EscapeNote, Finding, InterCtx};

/// Every rule the workspace lint can emit, for the per-rule summary.
pub const ALL_RULES: [&str; 13] = [
    "ambient-io",
    "dead-waiver",
    "device-taint",
    "double-unmap",
    "external-dep",
    "leak-on-exit",
    "lock-order",
    "panic",
    "phys-addr-arith",
    "relaxed-atomic",
    "sync-before-cpu-read",
    "unsafe-no-safety",
    "use-after-unmap",
];

/// The sorted member crate directories under `root/crates`.
pub(crate) fn member_crates(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut members: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    Ok(members)
}

/// Recursively collects `.rs` files under `dir`.
pub(crate) fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Which rule passes a workspace scan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pass {
    /// Style + manifest rules only (`lint --fast`).
    Fast,
    /// Everything: style, lock-order, protocol, unsafe audit.
    #[default]
    Full,
}

/// A full workspace scan: the violations the build gates on, plus (for
/// `Pass::Full`) the interprocedural analysis product the JSON report
/// exports next to the lock-order and unsafe inventories.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Waiver-filtered violations across every file and manifest.
    pub violations: Vec<LintViolation>,
    /// Call graph, summaries, escapes, and taint stats (`Pass::Full` only).
    pub protocol: Option<ProtocolAnalysis>,
}

/// Tallies unfiltered findings per rule for dead-waiver detection.
fn raw_rule_counts<'a>(
    rules_iter: impl IntoIterator<Item = &'a str>,
) -> std::collections::BTreeMap<&'static str, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for rule in rules_iter {
        // Rule names are interned `&'static str`s; match back onto the table.
        if let Some(r) = ALL_RULES.iter().find(|r| **r == rule) {
            *counts.entry(*r).or_insert(0) += 1;
        }
    }
    counts
}

/// Lints the whole workspace rooted at `root`: every member crate's
/// sources and manifest, plus the root manifest. `Pass::Full` adds the
/// lock-order, interprocedural protocol, device-taint, unsafe, and
/// dead-waiver passes.
pub fn lint_workspace_report(root: &Path, pass: Pass) -> std::io::Result<WorkspaceReport> {
    let mut out = Vec::new();
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    // The interprocedural context is built once over the whole workspace
    // so per-file protocol checks can resolve cross-file helper calls.
    let mut analysis = if pass == Pass::Full {
        let graph = build_workspace_graph(root)?;
        let summaries = summary::compute(&graph);
        Some(ProtocolAnalysis {
            graph,
            summaries,
            escapes: Vec::new(),
            taint: TaintStats::default(),
        })
    } else {
        None
    };
    for member in member_crates(root)? {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = member.join("Cargo.toml");
        if let Ok(toml) = fs::read_to_string(&manifest) {
            out.extend(lint_manifest(&label(&manifest), &toml));
        }
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        files.sort();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let rel = label(f);
            let ctx = FileContext {
                in_memsim: crate_name == "memsim",
                in_obs: crate_name == "obs",
                ..Default::default()
            };
            let p = lexer::prep(&rel, &src);
            out.extend(rules::style::check_prepped(&p, &src, ctx));
            if pass == Pass::Full {
                let ic = analysis.as_ref().map(|a| InterCtx {
                    graph: &a.graph,
                    summaries: &a.summaries,
                });
                let fp = rules::protocol::check_file(&p, &src, ctx, ic.as_ref());
                let sites = rules::unsafe_audit::scan_file(&p, &src);
                out.extend(rules::unsafe_audit::violations(&sites, &src));
                // Dead waivers: compare the file's waivers against what the
                // *unfiltered* passes found (waivers read from the `src`
                // argument, so an empty one disables filtering).
                let mut raw: Vec<&str> = rules::style::check_prepped(&p, "", ctx)
                    .iter()
                    .map(|v| v.rule)
                    .chain(fp.raw.iter().map(|f| f.rule))
                    .chain(
                        rules::unsafe_audit::violations(&sites, "")
                            .iter()
                            .map(|v| v.rule),
                    )
                    .collect();
                raw.sort_unstable();
                out.extend(rules::dead_waivers(&rel, &src, ctx, &raw_rule_counts(raw)));
                if let Some(a) = analysis.as_mut() {
                    a.escapes.extend(fp.escapes.into_iter().map(|note| {
                        rules::protocol::EscapeExport {
                            file: rel.clone(),
                            note,
                        }
                    }));
                    a.taint.absorb(fp.taint);
                }
                out.extend(fp.violations);
            }
        }
        // Integration tests and benches: ambient-I/O discipline only.
        for sub in ["tests", "benches"] {
            let aux_dir = member.join(sub);
            if !aux_dir.is_dir() {
                continue;
            }
            let mut aux_files = Vec::new();
            rust_files(&aux_dir, &mut aux_files)?;
            aux_files.sort();
            for f in &aux_files {
                let src = fs::read_to_string(f)?;
                let ctx = FileContext {
                    aux: true,
                    ..Default::default()
                };
                let rel = label(f);
                out.extend(lint_source(&rel, &src, ctx));
                if pass == Pass::Full {
                    let p = lexer::prep(&rel, &src);
                    let raw: Vec<&str> = rules::style::check_prepped(&p, "", ctx)
                        .iter()
                        .map(|v| v.rule)
                        .collect();
                    out.extend(rules::dead_waivers(&rel, &src, ctx, &raw_rule_counts(raw)));
                }
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if let Ok(toml) = fs::read_to_string(&root_manifest) {
        out.extend(lint_manifest(&label(&root_manifest), &toml));
    }
    if pass == Pass::Full {
        out.extend(lock_order_analysis(root)?.cycle_violations());
    }
    Ok(WorkspaceReport {
        violations: out,
        protocol: analysis,
    })
}

/// Lints the workspace and returns the gating violations only (the
/// historical shape; see [`lint_workspace_report`] for the analysis too).
pub fn lint_workspace_pass(root: &Path, pass: Pass) -> std::io::Result<Vec<LintViolation>> {
    Ok(lint_workspace_report(root, pass)?.violations)
}

/// Lints the whole workspace with every pass enabled (the historical
/// entry point; equivalent to [`lint_workspace_pass`] with [`Pass::Full`]).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintViolation>> {
    lint_workspace_pass(root, Pass::Full)
}
