// lint: allow(ambient-io) — the workspace walk must read source files and manifests
//! A pure-std workspace lint (no `syn`, no external dependencies).
//!
//! The crate is built around a small in-tree Rust front-end
//! ([`lexer`]: byte-aligned stripped views + token stream, [`cfg`]:
//! token trees and per-function control-flow graphs) shared by every
//! pass, so there is exactly one tokenizer, one `#[cfg(test)]` mask, and
//! one file walk. On top of it:
//!
//! 1. **House style rules** ([`rules::style`]) — no `unwrap()`/`expect(`
//!    outside `#[cfg(test)]`, no raw `PhysAddr` arithmetic outside
//!    `memsim`, no `std::process`/`std::net`/`std::fs`, no
//!    `Ordering::Relaxed` outside `crates/obs`, and no external
//!    dependencies in any manifest (the workspace builds offline).
//! 2. **Lock order** ([`rules::lock_order`]) — extracts every
//!    instrumented lock site, builds the nested-acquisition graph, and
//!    flags cycles; the site inventory feeds the model checker's
//!    `known_locks`.
//! 3. **DMA-API protocol** ([`rules::protocol`], [`typestate`]) — a
//!    typestate dataflow over each function's CFG tracking DMA handles
//!    (`Unmapped → Mapped → SyncedForCpu → Unmapped`): use-after-unmap,
//!    leak-on-exit, double-unmap, sync-before-cpu-read — the static
//!    mirror of dmasan's runtime rules.
//! 4. **Unsafe audit** ([`rules::unsafe_audit`]) — every `unsafe` must
//!    carry a `// SAFETY:` comment; the inventory (plus which crates
//!    `#![forbid(unsafe_code)]`) is exported like the lock-order report.
//!
//! Every rule is waiver-compatible (`// lint: allow(<rule>) — <reason>`,
//! reason mandatory) and the runner exits 0 (clean) / 1 (findings) /
//! 2 (scan failure) as before. Run via `cargo run --bin lint`
//! (`--fast` for style-only, `--json <path>` for the machine-readable
//! report).
#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

pub mod cfg;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod typestate;

pub use lexer::{aligned_views, strip_code, test_region_mask, Prep};
pub use report::{json_report, rule_summary, LintViolation};
pub use rules::lock_order::{lock_order_analysis, LockEdge, LockOrderReport, LockSite};
pub use rules::style::{lint_manifest, lint_source, FileContext};
pub use rules::unsafe_audit::{unsafe_audit_analysis, UnsafeReport, UnsafeSite};
pub use rules::{has_rule_waiver, IO_WAIVER, PANIC_WAIVER, RELAXED_WAIVER};
pub use typestate::Finding;

/// Every rule the workspace lint can emit, for the per-rule summary.
pub const ALL_RULES: [&str; 11] = [
    "ambient-io",
    "double-unmap",
    "external-dep",
    "leak-on-exit",
    "lock-order",
    "panic",
    "phys-addr-arith",
    "relaxed-atomic",
    "sync-before-cpu-read",
    "unsafe-no-safety",
    "use-after-unmap",
];

/// The sorted member crate directories under `root/crates`.
pub(crate) fn member_crates(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut members: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    Ok(members)
}

/// Recursively collects `.rs` files under `dir`.
pub(crate) fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Which rule passes a workspace scan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pass {
    /// Style + manifest rules only (`lint --fast`).
    Fast,
    /// Everything: style, lock-order, protocol, unsafe audit.
    #[default]
    Full,
}

/// Lints the whole workspace rooted at `root`: every member crate's
/// sources and manifest, plus the root manifest. `Pass::Full` adds the
/// lock-order, protocol, and unsafe passes.
pub fn lint_workspace_pass(root: &Path, pass: Pass) -> std::io::Result<Vec<LintViolation>> {
    let mut out = Vec::new();
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    for member in member_crates(root)? {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = member.join("Cargo.toml");
        if let Ok(toml) = fs::read_to_string(&manifest) {
            out.extend(lint_manifest(&label(&manifest), &toml));
        }
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        files.sort();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let rel = label(f);
            let ctx = FileContext {
                in_memsim: crate_name == "memsim",
                in_obs: crate_name == "obs",
                ..Default::default()
            };
            let p = lexer::prep(&rel, &src);
            out.extend(rules::style::check_prepped(&p, &src, ctx));
            if pass == Pass::Full {
                out.extend(rules::protocol::check(&p, &src, ctx));
                let sites = rules::unsafe_audit::scan_file(&p, &src);
                out.extend(rules::unsafe_audit::violations(&sites, &src));
            }
        }
        // Integration tests and benches: ambient-I/O discipline only.
        for sub in ["tests", "benches"] {
            let aux_dir = member.join(sub);
            if !aux_dir.is_dir() {
                continue;
            }
            let mut aux_files = Vec::new();
            rust_files(&aux_dir, &mut aux_files)?;
            aux_files.sort();
            for f in &aux_files {
                let src = fs::read_to_string(f)?;
                let ctx = FileContext {
                    aux: true,
                    ..Default::default()
                };
                out.extend(lint_source(&label(f), &src, ctx));
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if let Ok(toml) = fs::read_to_string(&root_manifest) {
        out.extend(lint_manifest(&label(&root_manifest), &toml));
    }
    if pass == Pass::Full {
        out.extend(lock_order_analysis(root)?.cycle_violations());
    }
    Ok(out)
}

/// Lints the whole workspace with every pass enabled (the historical
/// entry point; equivalent to [`lint_workspace_pass`] with [`Pass::Full`]).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintViolation>> {
    lint_workspace_pass(root, Pass::Full)
}
