// lint: allow(ambient-io) — the call-graph walk must read member crates' sources
//! The workspace call graph.
//!
//! Nodes are every non-test function extracted by the shared front-end
//! ([`crate::cfg::extract_functions`]) across the workspace file walk,
//! plus one anonymous node per closure body (`{fn}::closure@L<line>`) so
//! deferred code is represented rather than silently skipped. Edges are
//! resolved syntactically: a call site `name(…)` or `recv.name(…)` links
//! to every workspace function of that `name` whose parameter count is
//! compatible (receiver-position heuristics mirror the `map`/`unmap`
//! recognition in [`crate::typestate`]). Calls that resolve to nothing —
//! std/core methods, macros-expanded names, trait objects we cannot see —
//! are counted per function as *unknown callees*: the explicit bottom of
//! the interprocedural lattice. [`crate::summary`] consumes the graph
//! bottom-up over its SCCs.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::cfg::{build_trees, extract_functions, split_top_level_commas, Param, Tree};
use crate::lexer::{prep, tokenize, Prep};

/// One call-graph node: a named function or an anonymous closure body.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative file.
    pub file: String,
    /// Member crate the file belongs to.
    pub crate_name: String,
    /// Function name; closures use `{parent}::closure@L<line>`.
    pub name: String,
    /// 1-indexed line of the `fn` keyword (or the closure's `|`).
    pub line: usize,
    /// Declared parameters (receiver included; closures: their params).
    pub params: Vec<Param>,
    /// Body token trees.
    pub body: Vec<Tree>,
    /// `true` for anonymous closure nodes.
    pub is_closure: bool,
}

/// The resolved call graph plus per-node unknown-callee counts.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes; edges index into this vector.
    pub nodes: Vec<FnNode>,
    /// Simple name → candidate node ids (closures are not name-addressable).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved callee ids per node (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// Call sites per node that resolved to no workspace function — the
    /// explicit unknown-callee bottom.
    pub unknown_calls: Vec<usize>,
}

/// One syntactic call site found in a body.
#[derive(Debug)]
struct CallSite {
    name: String,
    /// Method-call syntax (`recv.name(…)`): the callee's receiver slot is
    /// implicit, so `argc` excludes it.
    method: bool,
    argc: usize,
}

/// Names treated as DMA-API intrinsics by the typestate pass; their
/// protocol effect is primitive, so call sites are not graph edges.
pub(crate) const INTRINSICS: [&str; 8] = [
    "map",
    "map_sg",
    "alloc_coherent",
    "unmap",
    "unmap_sg",
    "free_coherent",
    "sync_for_cpu",
    "sync_for_device",
];

/// Keywords that look like `ident (…)` call syntax but are not calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "fn", "in", "as", "move", "loop",
];

/// Collects every syntactic call site in `trees`, skipping closure bodies
/// (they are separate nodes with their own sites).
fn collect_calls(trees: &[Tree], out: &mut Vec<CallSite>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some((params_end, _)) = closure_at(trees, i) {
            // Skip the whole closure header; its body is scanned when the
            // closure node is built, not as part of the parent.
            let body_end = closure_body_end(trees, params_end + 1);
            i = body_end;
            continue;
        }
        // `. name ( … )` — method call.
        if trees[i].is_punct(".") {
            if let (Some(name), Some(Tree::Group { children, .. })) =
                (ident_text(trees.get(i + 1)), paren_group(trees.get(i + 2)))
            {
                out.push(CallSite {
                    name: name.to_string(),
                    method: true,
                    argc: split_top_level_commas(children).len(),
                });
                collect_calls(children, out);
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        // `name ( … )` — free (or path-suffixed) call; `name ! ( … )` is a
        // macro, not a call.
        if let (Some(name), Some(Tree::Group { children, .. })) =
            (ident_text(trees.get(i)), paren_group(trees.get(i + 1)))
        {
            if !NON_CALL_KEYWORDS.contains(&name) {
                out.push(CallSite {
                    name: name.to_string(),
                    method: false,
                    argc: split_top_level_commas(children).len(),
                });
            }
            collect_calls(children, out);
            i += 2;
            continue;
        }
        if let Tree::Group { children, .. } = &trees[i] {
            collect_calls(children, out);
        }
        i += 1;
    }
}

fn ident_text(t: Option<&Tree>) -> Option<&str> {
    match t {
        Some(Tree::Tok(tok)) if tok.is_ident => Some(&tok.text),
        _ => None,
    }
}

fn paren_group(t: Option<&Tree>) -> Option<&Tree> {
    match t {
        Some(g @ Tree::Group { delim: '(', .. }) => Some(g),
        _ => None,
    }
}

/// Detects a closure starting at `trees[i]`: `move |params| …` or a `|`
/// in expression-start position (slice start, or right after `(`/`,`/`=`)
/// — which keeps bitwise-or (`a | b`) and or-patterns out. Returns the
/// index of the closing param `|` and the index of the first param token.
pub(crate) fn closure_at(trees: &[Tree], i: usize) -> Option<(usize, usize)> {
    let (bar, after_move) = if trees[i].is_ident("move") {
        if trees.get(i + 1).is_some_and(|t| t.is_punct("|")) {
            (i + 1, true)
        } else {
            return None;
        }
    } else if trees[i].is_punct("|") {
        (i, false)
    } else {
        return None;
    };
    if !after_move {
        let expr_start = i == 0
            || trees
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct(",") || t.is_punct("=") || t.is_punct("("));
        if !expr_start {
            return None;
        }
    }
    // Find the closing `|` of the parameter list at this level.
    let mut j = bar + 1;
    while j < trees.len() {
        if trees[j].is_punct("|") {
            return Some((j, bar + 1));
        }
        // Parameter lists contain idents, `,`, `:`, `&`, `mut`, and type
        // groups; anything else means this was not a closure after all.
        let ok = match &trees[j] {
            Tree::Tok(t) => {
                t.is_ident
                    || matches!(
                        t.text.as_str(),
                        "," | ":" | "&" | "mut" | "_" | "::" | "<" | ">"
                    )
            }
            Tree::Group { delim, .. } => *delim == '(' || *delim == '[',
        };
        if !ok {
            return None;
        }
        j += 1;
    }
    None
}

/// The exclusive end of a closure body that starts at `body_start`: the
/// next top-level comma, or the end of the slice.
pub(crate) fn closure_body_end(trees: &[Tree], body_start: usize) -> usize {
    let mut j = body_start;
    while j < trees.len() {
        if trees[j].is_punct(",") {
            return j;
        }
        j += 1;
    }
    j
}

/// Extracts every closure in `trees` (recursing into groups, but not into
/// inner closures' bodies — those are found when the inner node is built).
fn collect_closures(trees: &[Tree], out: &mut Vec<(usize, Vec<Param>, Vec<Tree>)>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some((params_end, params_start)) = closure_at(trees, i) {
            let line = trees[i].line();
            let params: Vec<Param> = trees[params_start..params_end]
                .iter()
                .filter_map(|t| match t {
                    Tree::Tok(tok) if tok.is_ident && tok.text != "mut" => Some(Param {
                        name: tok.text.clone(),
                        by_ref: false,
                    }),
                    _ => None,
                })
                .collect();
            let end = closure_body_end(trees, params_end + 1);
            out.push((line, params, trees[params_end + 1..end].to_vec()));
            i = end;
            continue;
        }
        if let Tree::Group { children, .. } = &trees[i] {
            collect_closures(children, out);
        }
        i += 1;
    }
}

impl CallGraph {
    /// Builds the graph from already-prepared files: `(prep, crate_name)`
    /// pairs from the workspace walk.
    pub fn build(files: &[(Prep, String)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (p, crate_name) in files {
            let trees = build_trees(&tokenize(&p.blank));
            for f in extract_functions(p, &trees) {
                let parent_id = g.nodes.len();
                let parent_name = f.name.clone();
                g.push_node(FnNode {
                    file: p.label.clone(),
                    crate_name: crate_name.clone(),
                    name: f.name,
                    line: f.line,
                    params: f.params,
                    body: f.body,
                    is_closure: false,
                });
                // Closures become anonymous child nodes. Nested closures
                // are discovered from their parent closure's body in turn.
                let mut queue = vec![parent_id];
                while let Some(owner) = queue.pop() {
                    let mut closures = Vec::new();
                    collect_closures(&g.nodes[owner].body, &mut closures);
                    for (line, params, body) in closures {
                        let id = g.nodes.len();
                        g.push_node(FnNode {
                            file: p.label.clone(),
                            crate_name: crate_name.clone(),
                            name: format!("{parent_name}::closure@L{line}"),
                            line,
                            params,
                            body,
                            is_closure: true,
                        });
                        queue.push(id);
                    }
                }
            }
        }
        g.resolve_edges();
        g
    }

    fn push_node(&mut self, node: FnNode) {
        let id = self.nodes.len();
        if !node.is_closure {
            self.by_name.entry(node.name.clone()).or_default().push(id);
        }
        self.nodes.push(node);
        self.callees.push(Vec::new());
        self.unknown_calls.push(0);
    }

    fn resolve_edges(&mut self) {
        for id in 0..self.nodes.len() {
            let mut sites = Vec::new();
            collect_calls(&self.nodes[id].body, &mut sites);
            let mut callees = Vec::new();
            let mut unknown = 0;
            for site in &sites {
                if INTRINSICS.contains(&site.name.as_str()) {
                    continue; // primitive protocol effect, not an edge
                }
                let targets = self.resolve(&site.name, site.method, site.argc);
                if targets.is_empty() {
                    unknown += 1;
                } else {
                    callees.extend(targets);
                }
            }
            // Closures hang off their parent: the parent "calls" them (at
            // worst deferred, which the summaries treat conservatively).
            callees.sort_unstable();
            callees.dedup();
            self.callees[id] = callees;
            self.unknown_calls[id] = unknown;
        }
        // Parent → closure edges.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.is_closure {
                // The owner is the nearest earlier non-closure (or
                // closure) node in the same file whose name prefixes ours.
                let owner = self.nodes[..id]
                    .iter()
                    .rposition(|n| n.file == node.file && node.name.starts_with(n.name.as_str()));
                if let Some(o) = owner {
                    pending.push((o, id));
                }
            }
        }
        for (o, id) in pending {
            if !self.callees[o].contains(&id) {
                self.callees[o].push(id);
            }
        }
    }

    /// Resolves a call site to candidate node ids: workspace functions of
    /// that name whose arity is compatible (method calls: params = argc+1
    /// with a `self` receiver; free calls: params = argc, or an associated
    /// constructor taking argc after no receiver).
    pub fn resolve(&self, name: &str, method: bool, argc: usize) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        cands
            .iter()
            .copied()
            .filter(|&id| {
                let p = &self.nodes[id].params;
                if method {
                    p.len() == argc + 1 && p.first().is_some_and(|p0| p0.name == "self")
                } else {
                    p.len() == argc && p.first().is_none_or(|p0| p0.name != "self")
                }
            })
            .collect()
    }

    /// Tarjan SCCs in reverse-topological order (callees before callers),
    /// so summaries can be computed bottom-up in one sweep.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut sccs = Vec::new();
        let mut next = 0usize;
        // Iterative Tarjan: frame = (node, child cursor).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = self.callees[v].get(*cursor) {
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }

    /// Whether `id` participates in recursion (self-loop or SCC > 1).
    pub fn is_recursive(&self, id: usize, scc: &[usize]) -> bool {
        scc.len() > 1 || self.callees[id].contains(&id)
    }
}

/// Walks the workspace exactly like the lint pass (member crates' `src/`
/// trees) and builds the call graph.
pub fn build_workspace_graph(root: &Path) -> std::io::Result<CallGraph> {
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let mut files = Vec::new();
    for member in crate::member_crates(root)? {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut rs = Vec::new();
        crate::rust_files(&src_dir, &mut rs)?;
        rs.sort();
        for f in &rs {
            let src = fs::read_to_string(f)?;
            files.push((prep(&label(f), &src), crate_name.clone()));
        }
    }
    Ok(CallGraph::build(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&[(prep("x.rs", src), "x".to_string())])
    }

    fn id_of(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("{name} not in graph"))
    }

    #[test]
    fn free_and_method_calls_resolve_by_name_and_arity() {
        let src = "fn helper(a: u32) {}\n\
                   impl S {\n    fn act(&self, x: u32) { helper(x); self.go(x); }\n    fn go(&self, x: u32) {}\n}\n";
        let g = graph(src);
        let act = id_of(&g, "act");
        let helper = id_of(&g, "helper");
        let go = id_of(&g, "go");
        assert!(g.callees[act].contains(&helper), "{g:?}");
        assert!(g.callees[act].contains(&go), "{g:?}");
        assert_eq!(g.unknown_calls[act], 0);
    }

    #[test]
    fn unresolved_calls_count_as_unknown_bottom() {
        let g = graph("fn f(v: Vec<u32>) { external_thing(v); }\n");
        let f = id_of(&g, "f");
        assert!(g.callees[f].is_empty());
        assert_eq!(g.unknown_calls[f], 1);
    }

    #[test]
    fn arity_mismatch_does_not_resolve() {
        let g = graph("fn t(a: u32, b: u32) {}\nfn f() { t(1); }\n");
        let f = id_of(&g, "f");
        assert!(g.callees[f].is_empty(), "{g:?}");
        assert_eq!(g.unknown_calls[f], 1);
    }

    #[test]
    fn closures_become_anonymous_nodes_with_parent_edges() {
        let g = graph("fn f(items: &[u32]) { run(move || step(1)); }\nfn step(x: u32) {}\n");
        let f = id_of(&g, "f");
        let closure = g
            .nodes
            .iter()
            .position(|n| n.is_closure)
            .expect("closure node");
        assert!(g.nodes[closure].name.starts_with("f::closure@L"));
        assert!(g.callees[f].contains(&closure), "{g:?}");
        // The closure body's call belongs to the closure, not the parent.
        let step = id_of(&g, "step");
        assert!(g.callees[closure].contains(&step), "{g:?}");
        assert!(!g.callees[f].contains(&step), "{g:?}");
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let g = graph("fn f(a: u32, b: u32) -> u32 { mix(a | b) }\nfn mix(x: u32) -> u32 { x }\n");
        assert!(g.nodes.iter().all(|n| !n.is_closure), "{:?}", g.nodes);
    }

    #[test]
    fn sccs_come_out_callees_first() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { b(); }\nfn d() {}\n";
        let g = graph(src);
        let sccs = g.sccs();
        let pos = |name: &str| {
            let id = id_of(&g, name);
            sccs.iter()
                .position(|s| s.contains(&id))
                .expect("in an scc")
        };
        // b and c are one SCC and must precede a.
        assert_eq!(pos("b"), pos("c"));
        assert!(pos("b") < pos("a"), "{sccs:?}");
        let bc = &sccs[pos("b")];
        assert!(g.is_recursive(id_of(&g, "b"), bc));
        assert!(!g.is_recursive(id_of(&g, "a"), &sccs[pos("a")]));
    }

    #[test]
    fn dma_intrinsics_are_not_edges() {
        let src = "impl E {\n    fn map(&self, ctx: &mut C, b: B, d: D) -> M { m }\n}\n\
                   fn f(engine: &E, ctx: &mut C) { let m = engine.map(ctx, DmaBuf::new(p, 4), DmaDirection::ToDevice); }\n";
        let g = graph(src);
        let f = id_of(&g, "f");
        assert!(g.callees[f].is_empty(), "{g:?}");
    }
}
