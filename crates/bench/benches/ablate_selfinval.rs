//! §7 "Hardware solutions" ablation: Basu et al.'s self-invalidating
//! IOMMU \[10\] (modeled at its best case: entries self-destruct exactly at
//! unmap, costing zero CPU) vs DMA shadowing and the software engines.
//!
//! The takeaway the paper implies: such hardware would make strict
//! page-granular protection as cheap as deferred — but it does not exist,
//! and it still lacks sub-page protection; shadowing gets close on
//! performance with byte granularity on today's hardware.

use netsim::{tcp_stream_rx, EngineKind};

fn main() {
    println!("==== Ablation: self-invalidating IOMMU hardware (§7) ====");
    for cores in [1usize, 16] {
        let cfg = bench::figure_cfg(cores, 64 * 1024);
        let rows: Vec<_> = [
            EngineKind::NoIommu,
            EngineKind::SelfInvalHw,
            EngineKind::Copy,
            EngineKind::IdentityPlus,
        ]
        .iter()
        .map(|&k| tcp_stream_rx(k, &cfg))
        .collect();
        println!(
            "{}",
            netsim::format_table(
                &format!("TCP RX, 64 KB messages, {cores} core(s)"),
                &rows,
                "no iommu"
            )
        );
    }
    println!("(self-inval hw is strict at page granularity with ~identity- costs,");
    println!(" but requires hardware that does not exist and stays page-granular)");
}
