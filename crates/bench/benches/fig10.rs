//! Figure 10: CPU utilization breakdown of the TCP request/response test
//! (64 KB message size).

use netsim::tcp_rr;

fn main() {
    let cfg = netsim::ExpConfig {
        msg_size: 64 * 1024,
        items_per_core: 2_000,
        warmup_per_core: 200,
        ..netsim::ExpConfig::default()
    };
    let rows: Vec<_> = bench::FIGURE_ENGINES
        .iter()
        .map(|&k| tcp_rr(k, &cfg))
        .collect();
    bench::print_breakdown(
        "Figure 10: TCP RR per-transaction CPU breakdown (64 KB msgs)",
        &rows,
    );
    for r in &rows {
        println!(
            "{:<10} cpu {:>5.1}%  latency {:>6.1} us",
            r.engine,
            r.cpu * 100.0,
            r.latency_us.unwrap()
        );
    }
}
