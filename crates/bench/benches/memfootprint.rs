//! §6 "Memory consumption": shadow-pool footprint during the throughput
//! benchmarks vs the worst-case bound.
//!
//! The paper bounds the pool at 16 K buffers per class per NUMA domain:
//! 2 × (16K × 4 KB + 16K × 64 KB) ≈ 2.1 GB worst case, but observes only
//! ~160 MB in practice because shadow buffers correspond to in-flight
//! DMAs.

use netsim::{tcp_stream_rx, tcp_stream_tx, EngineKind};

fn main() {
    let worst_case: u64 = 2 * (16 * 1024 * (4096 + 65536));
    println!("==== Shadow buffer memory consumption ====");
    println!(
        "worst-case bound (16K buffers/class, 2 classes, 2 domains): {:.2} GB",
        worst_case as f64 / (1 << 30) as f64
    );
    for cores in [1usize, 16] {
        let cfg = bench::figure_cfg(cores, 64 * 1024);
        let rx = tcp_stream_rx(EngineKind::Copy, &cfg);
        let tx = tcp_stream_tx(EngineKind::Copy, &cfg);
        let rx_b = rx.shadow_bytes_peak.unwrap_or(0);
        let tx_b = tx.shadow_bytes_peak.unwrap_or(0);
        println!(
            "{cores:>2} core(s): RX shadow footprint {:>8.2} MB, TX {:>8.2} MB ({}x / {}x below worst case)",
            rx_b as f64 / (1 << 20) as f64,
            tx_b as f64 / (1 << 20) as f64,
            worst_case.checked_div(rx_b).unwrap_or(0),
            worst_case.checked_div(tx_b).unwrap_or(0),
        );
    }
}
