//! Figure 11: memcached aggregated transactional throughput and CPU
//! utilization (16 instances under memslap load).

use netsim::memcached;

fn main() {
    let cfg = netsim::ExpConfig {
        cores: 16,
        msg_size: 1024, // memslap default value size
        items_per_core: 3_000,
        warmup_per_core: 300,
        ..netsim::ExpConfig::default()
    };
    let rows: Vec<_> = bench::FIGURE_ENGINES
        .iter()
        .map(|&k| memcached(k, &cfg))
        .collect();
    println!("==== Figure 11: memcached (16 instances, memslap 90/10 GET/SET) ====");
    println!(
        "{:<10} {:>14} {:>8} {:>8}",
        "engine", "Mtx/s", "rel", "cpu%"
    );
    let base = rows[0].transactions_per_sec.unwrap();
    for r in &rows {
        let t = r.transactions_per_sec.unwrap();
        println!(
            "{:<10} {:>14.2} {:>8.2} {:>8.1}",
            r.engine,
            t / 1e6,
            t / base,
            r.cpu * 100.0
        );
    }
}
