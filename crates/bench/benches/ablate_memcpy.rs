//! §5.4 ablation: "smart memcpy" flavors (ERMS vs SIMD vs non-temporal)
//! on the copy-heavy single-core TX workload.

use netsim::{tcp_stream_tx, EngineKind, ExpConfig};
use simcore::{CostModel, MemcpyFlavor, Phase};

fn main() {
    println!("==== Ablation: memcpy implementation (§5.4), single-core 64 KB TX ====");
    println!(
        "{:<14} {:>10} {:>8} {:>14} {:>14}",
        "flavor", "Gb/s", "cpu%", "memcpy us/buf", "other us/buf"
    );
    for (name, flavor) in [
        ("erms", MemcpyFlavor::Erms),
        ("simd", MemcpyFlavor::Simd),
        ("non-temporal", MemcpyFlavor::NonTemporal),
    ] {
        let mut cost = CostModel::haswell_2_4ghz();
        cost.memcpy_flavor = flavor;
        let cfg = ExpConfig {
            msg_size: 64 * 1024,
            cost,
            items_per_core: 20_000,
            warmup_per_core: 2_000,
            ..ExpConfig::default()
        };
        let r = tcp_stream_tx(EngineKind::Copy, &cfg);
        println!(
            "{:<14} {:>10.2} {:>8.1} {:>14.2} {:>14.2}",
            name,
            r.gbps,
            r.cpu * 100.0,
            r.per_item.get(Phase::Memcpy).to_micros(r.clock_ghz),
            r.per_item.get(Phase::Other).to_micros(r.clock_ghz)
        );
    }
    println!("\n(the paper found ERMS best overall on its ERMS-capable Haswells)");
}
