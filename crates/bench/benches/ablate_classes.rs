//! Pool size-class ablation (§5.3's "one can have more size classes"):
//! the paper's 2-class pool (4 KB + 64 KB) vs a 3-class pool with a
//! sub-page 2 KB class that packs two MTU shadow buffers per page.
//!
//! The effect shows in the shadow-memory footprint of a full receive ring
//! (many MTU buffers in flight at once); throughput is unaffected.

use dma_api::{DmaBuf, DmaError};
use iommu::{DeviceId, Iommu, Perms};
use memsim::{NumaDomain, NumaTopology, PhysMemory};
use netsim::{tcp_stream_rx, EngineKind, ExpConfig};
use shadow_core::{IovaCodec, PoolConfig, ShadowPool};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

fn ring_footprint(pool_cfg: PoolConfig, in_flight: usize) -> Result<u64, DmaError> {
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(Iommu::new());
    let pool = ShadowPool::new(mem.clone(), mmu, DeviceId(0), pool_cfg);
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    ctx.seek(Cycles(1));
    let os = mem.alloc_frames(NumaDomain(0), 1).expect("os buf").base();
    // A full RX ring: `in_flight` MTU buffers mapped at once.
    let _iovas: Vec<_> = (0..in_flight)
        .map(|_| pool.acquire_shadow(&mut ctx, DmaBuf::new(os, 1500), Perms::Write))
        .collect::<Result<_, _>>()?;
    Ok(pool.stats().shadow_bytes)
}

fn main() {
    println!("==== Ablation: shadow pool size classes (§5.3) ====");
    let variants: Vec<(&str, PoolConfig)> = vec![
        ("4KB+64KB (paper)", PoolConfig::default()),
        (
            "2KB+4KB+64KB (subpage)",
            PoolConfig {
                codec: IovaCodec::new(6, 2, vec![2048, 4096, 65536]),
                max_buffers_per_class: 16 * 1024,
                magazines: None,
            },
        ),
    ];
    println!(
        "{:<26} {:>26} {:>10} {:>8}",
        "pool classes", "256-slot ring footprint", "RX Gb/s", "cpu%"
    );
    for (name, pool) in variants {
        let kb = ring_footprint(pool.clone(), 256).expect("footprint") as f64 / 1024.0;
        let cfg = ExpConfig {
            msg_size: 64 * 1024,
            pool_config: Some(pool),
            items_per_core: 20_000,
            warmup_per_core: 2_000,
            ..ExpConfig::default()
        };
        let r = tcp_stream_rx(EngineKind::Copy, &cfg);
        println!(
            "{:<26} {:>23.0} KB {:>10.2} {:>8.1}",
            name,
            kb,
            r.gbps,
            r.cpu * 100.0
        );
    }
    println!("\n(a sub-page 2 KB class packs two same-rights MTU shadows per page,");
    println!(" halving the footprint of a full receive ring at equal throughput)");
}
