//! Scaling sweep beyond the paper's 16 cores: 16/64/128/256 virtual
//! cores, global vs per-core (magazine) allocation state.
//!
//! Extends Figures 6–8 along the core-count axis: per-engine RX
//! throughput plus a per-lock spin breakdown (the IOVA-allocator lock and
//! the invalidation-queue lock) at every point. The wire scales with the
//! core count (40 Gb/s per 16 cores, a multi-port NIC) so the locks — not
//! link serialization — are the resource under test.
//!
//! Besides the printed tables, the sweep writes machine-readable curves
//! to `target/scaling_curves.csv` and `target/scaling_curves.jsonl`
//! (one JSON object per measured point), the artifact CI uploads next to
//! the lint report.

// lint: allow(ambient-io) — the sweep writes its curve artifacts under target/
// lint: allow(panic) — a bench harness aborts loudly on unwritable output

use netsim::{tcp_stream_rx_on, EngineKind, ExpConfig, SimStack};
use obs::Json;
use simcore::Phase;
use std::path::PathBuf;

/// The x-axis: the paper's 16 cores plus the extended sweep.
const CORE_COUNTS: [usize; 4] = [16, 64, 128, 256];

/// Engines whose map/unmap paths take the contended locks.
const ENGINES: [EngineKind; 4] = [
    EngineKind::Copy,
    EngineKind::IdentityMinus,
    EngineKind::IdentityPlus,
    EngineKind::LinuxStrict,
];

struct Point {
    engine: &'static str,
    cores: usize,
    percore: bool,
    gbps: f64,
    cpu: f64,
    spin_us_per_item: f64,
    iova_lock: &'static str,
    iova_spin_cycles: u64,
    invalq_spin_cycles: u64,
    invalq_acquisitions: u64,
}

fn measure(kind: EngineKind, cores: usize, percore: bool) -> Point {
    // Item counts shrink with core count so the whole sweep stays in
    // bench-budget host time; every run still simulates >10k packets.
    let items = (12_800 / cores.max(16)) as u64 * 16;
    let cfg = ExpConfig {
        cores,
        msg_size: 64 * 1024,
        items_per_core: items,
        warmup_per_core: items / 8,
        wire_gbps: 40.0 * (cores as f64 / 16.0),
        percore,
        ..ExpConfig::default()
    };
    let stack = SimStack::new(kind, &cfg);
    let r = tcp_stream_rx_on(&stack, &cfg);
    let (iova_lock, iova_spin_cycles) = stack
        .engine
        .iova_lock_stats()
        .map_or(("none", 0), |(name, s)| (name, s.total_spin.get()));
    let invalq = stack.mmu.invalq().lock().stats();
    Point {
        engine: kind.name(),
        cores,
        percore,
        gbps: r.gbps,
        cpu: r.cpu,
        spin_us_per_item: r.per_item.get(Phase::Spinlock).to_micros(r.clock_ghz),
        iova_lock,
        iova_spin_cycles,
        invalq_spin_cycles: invalq.total_spin.get(),
        invalq_acquisitions: invalq.acquisitions,
    }
}

fn csv(points: &[Point]) -> String {
    let mut out = String::from(
        "engine,cores,config,gbps,cpu,spin_us_per_item,\
         iova_lock,iova_spin_cycles,invalq_spin_cycles,invalq_acquisitions\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4},{:.4},{},{},{},{}\n",
            p.engine,
            p.cores,
            if p.percore { "percore" } else { "global" },
            p.gbps,
            p.cpu,
            p.spin_us_per_item,
            p.iova_lock,
            p.iova_spin_cycles,
            p.invalq_spin_cycles,
            p.invalq_acquisitions,
        ));
    }
    out
}

fn jsonl(points: &[Point]) -> String {
    let mut out = String::new();
    for p in points {
        let obj = Json::Obj(vec![
            ("type".into(), Json::Str("scaling-point".into())),
            ("engine".into(), Json::Str(p.engine.into())),
            ("cores".into(), Json::UInt(p.cores as u64)),
            (
                "config".into(),
                Json::Str(if p.percore { "percore" } else { "global" }.into()),
            ),
            ("gbps".into(), Json::Float((p.gbps * 1e3).round() / 1e3)),
            ("cpu".into(), Json::Float((p.cpu * 1e4).round() / 1e4)),
            (
                "spin_us_per_item".into(),
                Json::Float((p.spin_us_per_item * 1e4).round() / 1e4),
            ),
            ("iova_lock".into(), Json::Str(p.iova_lock.into())),
            ("iova_spin_cycles".into(), Json::UInt(p.iova_spin_cycles)),
            (
                "invalq_spin_cycles".into(),
                Json::UInt(p.invalq_spin_cycles),
            ),
            (
                "invalq_acquisitions".into(),
                Json::UInt(p.invalq_acquisitions),
            ),
        ]);
        out.push_str(&obj.encode());
        out.push('\n');
    }
    out
}

fn target_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target")
}

fn main() {
    println!("==== Scaling sweep: 16/64/128/256 cores, global vs per-core ====");
    let mut points = Vec::new();
    for percore in [false, true] {
        let config = if percore { "percore" } else { "global" };
        for &cores in &CORE_COUNTS {
            println!(
                "\n-- {config}, {cores} cores (wire {} Gb/s) --",
                40.0 * cores as f64 / 16.0
            );
            println!(
                "{:<10} {:>9} {:>6} {:>12} {:>14} {:>14}",
                "engine", "RX Gb/s", "cpu%", "spin us/pkt", "iova spin cyc", "invalq spin cyc"
            );
            for &kind in &ENGINES {
                let p = measure(kind, cores, percore);
                println!(
                    "{:<10} {:>9.2} {:>6.1} {:>12.3} {:>14} {:>14}",
                    p.engine,
                    p.gbps,
                    p.cpu * 100.0,
                    p.spin_us_per_item,
                    p.iova_spin_cycles,
                    p.invalq_spin_cycles
                );
                points.push(p);
            }
        }
    }
    let dir = target_dir();
    std::fs::create_dir_all(&dir).expect("create target dir");
    let csv_path = dir.join("scaling_curves.csv");
    std::fs::write(&csv_path, csv(&points)).expect("write scaling_curves.csv");
    let jsonl_path = dir.join("scaling_curves.jsonl");
    std::fs::write(&jsonl_path, jsonl(&points)).expect("write scaling_curves.jsonl");
    println!(
        "\ncurves written to {} and {}",
        csv_path.display(),
        jsonl_path.display()
    );
    println!("(per-core magazines shard the IOVA allocator and batch invalidation");
    println!(" queue postings; the global config reproduces Figures 6-8's collapse)");
}
