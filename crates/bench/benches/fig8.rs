//! Figure 8: average packet processing time breakdown in the 16-core TCP
//! throughput tests (64 KB message size) — where identity+'s invalidation
//! queue lock contention becomes visible as spinlock time.

fn main() {
    let rx = bench::run_engines(16, 64 * 1024, netsim::tcp_stream_rx);
    bench::print_breakdown("Figure 8a: 16-core RX breakdown (64 KB msgs)", &rx);
    let tx = bench::run_engines(16, 64 * 1024, netsim::tcp_stream_tx);
    bench::print_breakdown("Figure 8b: 16-core TX breakdown (64 KB msgs)", &tx);
}
