//! Figure 7: 16-core TCP transmit (TX) throughput and CPU utilization.

fn main() {
    bench::print_figure(
        "Figure 7: 16-core TCP TX (netperf TCP_STREAM)",
        16,
        &bench::MSG_SIZES,
        netsim::tcp_stream_tx,
    );
}
