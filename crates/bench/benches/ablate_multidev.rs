//! Cross-device interference ablation: the invalidation queue is a
//! *global* resource (§2.1 — one queue per IOMMU, one lock), so a single
//! strictly-protected device degrades every other device on the machine.
//! DMA shadowing never touches the queue, so a shadowed device is immune
//! to — and causes no — interference.
//!
//! Setup: cores 0–7 drive a "victim" NIC under the engine on the row;
//! cores 8–15 drive a second, strictly-protected (identity+) NIC through
//! the same IOMMU. Reported: the victim's map/unmap throughput alone vs
//! with the noisy neighbor.

use dma_api::{DmaBuf, DmaDirection, DmaEngine, IdentityDma, LinuxDma, NoIommu};
use iommu::{DeviceId, Iommu};
use memsim::{NumaTopology, PhysMemory};
use shadow_core::{PoolConfig, ShadowDma};
use simcore::{CoreCtx, CoreId, CoreTask, CostModel, Cycles, MultiCoreSim, StepOutcome};
use std::sync::Arc;

const OPS: u64 = 20_000;

fn victim_engine(name: &str, mem: Arc<PhysMemory>, mmu: Arc<Iommu>) -> Box<dyn DmaEngine> {
    let dev = DeviceId(0);
    match name {
        "no iommu" => Box::new(NoIommu::new(mem, dev)),
        "copy" => Box::new(ShadowDma::new(mem, mmu, dev, PoolConfig::default())),
        "identity-" => Box::new(IdentityDma::deferred(mem, mmu, dev, 8)),
        "identity+" => Box::new(IdentityDma::strict(mem, mmu, dev)),
        _ => Box::new(LinuxDma::strict(mem, mmu, dev)),
    }
}

/// Runs 8 victim cores (+ optionally 8 noisy identity+ cores on a second
/// device); returns the victim's aggregate map/unmap ops per second.
fn run(victim: &str, with_neighbor: bool) -> f64 {
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(Iommu::new());
    let v_eng = victim_engine(victim, mem.clone(), mmu.clone());
    let n_eng = IdentityDma::strict(mem.clone(), mmu.clone(), DeviceId(1));
    let cores = if with_neighbor { 16 } else { 8 };
    let cost = Arc::new(CostModel::haswell_2_4ghz());
    let mut sim = MultiCoreSim::new(cost, cores);
    for ctx in sim.ctxs_mut() {
        ctx.seek(Cycles(1));
    }
    let bufs: Vec<DmaBuf> = (0..cores)
        .map(|i| {
            let domain = mem.topology().domain_of_core(CoreId(i as u16));
            DmaBuf::new(mem.alloc_frames(domain, 1).expect("buf").base(), 1500)
        })
        .collect();
    let mut end_times = vec![Cycles::ZERO; 8];
    {
        let v = &v_eng;
        let n = &n_eng;
        let ends = std::cell::RefCell::new(&mut end_times);
        let mut tasks: Vec<Box<dyn CoreTask + '_>> = (0..cores)
            .map(|i| {
                let buf = bufs[i];
                let mut count = 0u64;
                let ends = &ends;
                Box::new(move |ctx: &mut CoreCtx| {
                    let engine: &dyn DmaEngine = if i < 8 { v.as_ref() } else { n };
                    let m = engine.map(ctx, buf, DmaDirection::FromDevice).expect("map");
                    engine.unmap(ctx, m).expect("unmap");
                    count += 1;
                    if count >= OPS {
                        if i < 8 {
                            ends.borrow_mut()[i] = ctx.now();
                        }
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }) as Box<dyn CoreTask + '_>
            })
            .collect();
        sim.run(&mut tasks, Cycles::MAX);
    }
    let end = end_times.iter().copied().max().unwrap();
    (8 * OPS) as f64 / end.to_secs(2.4)
}

fn main() {
    println!("==== Ablation: cross-device interference via the shared invalidation queue ====");
    println!(
        "{:<12} {:>16} {:>18} {:>10}",
        "victim", "alone (Mops/s)", "w/ strict NIC B", "slowdown"
    );
    // no-iommu is omitted: its map/unmap are no-ops, so the metric is
    // meaningless (and trivially interference-free).
    for victim in ["copy", "identity-", "identity+"] {
        let alone = run(victim, false) / 1e6;
        let noisy = run(victim, true) / 1e6;
        println!(
            "{:<12} {:>16.2} {:>18.2} {:>9.2}x",
            victim,
            alone,
            noisy,
            alone / noisy
        );
    }
    println!("\n(strict zero-copy protection on ANY device throttles every other");
    println!(" strictly-protected device; shadowed and unprotected devices never");
    println!(" queue invalidations, so they neither suffer nor cause interference)");
}
