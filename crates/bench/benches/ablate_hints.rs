//! §5.4 ablation: copying hints.
//!
//! Incoming packets are often much smaller than their MTU-sized receive
//! buffers. Without a hint, `dma_unmap` copies the full mapped length;
//! with the IP-length hint it copies only the bytes that arrived.

use netsim::{tcp_stream_rx, EngineKind, ExpConfig};
use simcore::Phase;

fn main() {
    println!("==== Ablation: copying hints (§5.4), single-core RX ====");
    println!(
        "{:<22} {:>10} {:>8} {:>14}",
        "configuration", "Gb/s", "cpu%", "memcpy us/pkt"
    );
    for wire in [300usize, 700, 1400] {
        for hint in [false, true] {
            let cfg = ExpConfig {
                msg_size: 64 * 1024,
                rx_wire_payload: Some(wire),
                use_copy_hint: hint,
                items_per_core: 20_000,
                warmup_per_core: 2_000,
                ..ExpConfig::default()
            };
            let r = tcp_stream_rx(EngineKind::Copy, &cfg);
            println!(
                "{:<22} {:>10.2} {:>8.1} {:>14.3}",
                format!("{wire}B packets, hint={hint}"),
                r.gbps,
                r.cpu * 100.0,
                r.per_item.get(Phase::Memcpy).to_micros(r.clock_ghz)
            );
        }
    }
}
