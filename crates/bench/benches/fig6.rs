//! Figure 6: 16-core TCP receive (RX) throughput and CPU utilization.

fn main() {
    bench::print_figure(
        "Figure 6: 16-core TCP RX (netperf TCP_STREAM)",
        16,
        &bench::MSG_SIZES,
        netsim::tcp_stream_rx,
    );
}
