//! Table 1: the protection-properties matrix, reproduced by actually
//! running every attack against every engine.

fn main() {
    println!("==== Table 1: protection properties (observed by attack) ====");
    println!(
        "{:<12} {:>16} {:>16} {:>22}",
        "engine", "iommu protect", "sub-page protect", "no vulnerability win"
    );
    let mark = |b: bool| if b { "+" } else { "-" };
    for row in attacks::run_matrix() {
        println!(
            "{:<12} {:>16} {:>16} {:>22}",
            row.engine.name(),
            mark(row.iommu_protection),
            mark(row.sub_page_protect),
            mark(row.no_vulnerability_window)
        );
    }
    println!("\nattack evidence:");
    for row in attacks::run_matrix() {
        for r in &row.reports {
            println!("  {r}");
        }
    }
    // Cross-check against the paper's claims.
    let rows = attacks::run_matrix();
    for (engine, iommu, subpage, window) in attacks::expected_table1() {
        let row = rows.iter().find(|r| r.engine == engine).expect("row");
        assert_eq!(
            (
                row.iommu_protection,
                row.sub_page_protect,
                row.no_vulnerability_window
            ),
            (iommu, subpage, window),
            "Table 1 mismatch for {engine}"
        );
    }
    println!("\nall rows match the paper's Table 1");
}
