//! Host wall-clock harness: see `bench::host`. Times the fig1/fig5/micro
//! hot loops in real time and maintains the `BENCH_HOST.json` perf
//! trajectory (`--record <label>` to append, `--check` for the CI gate).

// lint: allow(ambient-io) — the harness entry point forwards argv and
// turns the run's outcome into the process exit code

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bench::host::run(&args));
}
