//! Figure 3: single-core TCP receive (RX) throughput and CPU utilization
//! across message sizes.

fn main() {
    bench::print_figure(
        "Figure 3: single-core TCP RX (netperf TCP_STREAM)",
        1,
        &bench::MSG_SIZES,
        netsim::tcp_stream_rx,
    );
}
