//! Figure 4: single-core TCP transmit (TX) throughput and CPU utilization
//! across message sizes.

fn main() {
    bench::print_figure(
        "Figure 4: single-core TCP TX (netperf TCP_STREAM)",
        1,
        &bench::MSG_SIZES,
        netsim::tcp_stream_tx,
    );
}
