//! Figure 5: average packet processing time breakdown in the single-core
//! TCP throughput tests (64 KB message size).

fn main() {
    let rx = bench::run_engines(1, 64 * 1024, netsim::tcp_stream_rx);
    bench::print_breakdown("Figure 5a: single-core RX breakdown (64 KB msgs)", &rx);
    let tx = bench::run_engines(1, 64 * 1024, netsim::tcp_stream_tx);
    bench::print_breakdown("Figure 5b: single-core TX breakdown (64 KB msgs)", &tx);
}
