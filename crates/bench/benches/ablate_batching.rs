//! §2.2.1 ablation: deferred-invalidation batching scope — stock Linux's
//! single global list+lock vs ATC'15's per-core lists — measured as raw
//! map/unmap throughput on 16 cores.

use dma_api::{DmaBuf, DmaDirection, DmaEngine, FlushScope, IdentityDma};
use iommu::{DeviceId, Iommu};
use memsim::{NumaTopology, PhysMemory};
use simcore::{CoreCtx, CoreTask, CostModel, Cycles, MultiCoreSim, Phase, StepOutcome};
use std::sync::Arc;

const DEV: DeviceId = DeviceId(0);
const OPS: u64 = 30_000;
const CORES: usize = 16;

fn run(scope: FlushScope) -> (f64, f64, u64) {
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(Iommu::new());
    let engine = IdentityDma::deferred_with_scope(mem.clone(), mmu.clone(), DEV, CORES, scope);
    let cost = Arc::new(CostModel::haswell_2_4ghz());
    let mut sim = MultiCoreSim::new(cost.clone(), CORES);
    for ctx in sim.ctxs_mut() {
        ctx.seek(Cycles(1));
    }
    let bufs: Vec<DmaBuf> = (0..CORES)
        .map(|i| {
            let domain = mem.topology().domain_of_core(simcore::CoreId(i as u16));
            let pfn = mem.alloc_frames(domain, 1).expect("buf");
            DmaBuf::new(pfn.base(), 1500)
        })
        .collect();
    let mut counters = [0u64; CORES];
    {
        let engine = &engine;
        let mut tasks: Vec<Box<dyn CoreTask + '_>> = counters
            .iter_mut()
            .enumerate()
            .map(|(i, count)| {
                let buf = bufs[i];
                Box::new(move |ctx: &mut CoreCtx| {
                    let m = engine.map(ctx, buf, DmaDirection::FromDevice).expect("map");
                    engine.unmap(ctx, m).expect("unmap");
                    *count += 1;
                    if *count >= OPS {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }) as Box<dyn CoreTask + '_>
            })
            .collect();
        sim.run(&mut tasks, Cycles::MAX);
    }
    let end = sim.ctxs().iter().map(|c| c.now()).max().unwrap();
    let secs = end.to_secs(2.4);
    let mops = (OPS * CORES as u64) as f64 / secs / 1e6;
    let spin_us: f64 = sim
        .ctxs()
        .iter()
        .map(|c| c.breakdown.get(Phase::Spinlock).to_micros(2.4))
        .sum::<f64>()
        / (OPS * CORES as u64) as f64;
    let pending = engine.flusher().map(|f| f.deferred_total()).unwrap_or(0);
    (mops, spin_us, pending)
}

fn main() {
    println!("==== Ablation: deferred batching scope (§2.2.1), 16-core map/unmap ====");
    println!(
        "{:<18} {:>14} {:>18} {:>14}",
        "scope", "M map+unmap/s", "spin us/op", "deferred ops"
    );
    for (name, scope) in [
        ("global (Linux)", FlushScope::Global),
        ("per-core (ATC15)", FlushScope::PerCore),
    ] {
        let (mops, spin, deferred) = run(scope);
        println!("{name:<18} {mops:>14.2} {spin:>18.4} {deferred:>14}");
    }
    println!("\n(the global list's lock serializes unmaps; per-core batching removes");
    println!(" the contention at the price of a longer vulnerability window)");
}
