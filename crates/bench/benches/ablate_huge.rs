//! §5.5 ablation: huge DMA buffers — the hybrid head/tail-copy design vs
//! strict zero-copy mapping vs (modeled) full copying.

use dma_api::{DmaBuf, DmaDirection, DmaEngine, IdentityDma};
use iommu::{DeviceId, Iommu};
use memsim::{NumaTopology, PhysMemory, PAGE_SIZE};
use shadow_core::{PoolConfig, ShadowDma};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

const DEV: DeviceId = DeviceId(0);

fn run_cycle(engine: &dyn DmaEngine, ctx: &mut CoreCtx, buf: DmaBuf, iters: u32) -> f64 {
    let start = ctx.now();
    for _ in 0..iters {
        let m = engine
            .map(ctx, buf, DmaDirection::Bidirectional)
            .expect("map");
        engine.unmap(ctx, m).expect("unmap");
    }
    (ctx.now() - start).to_micros(ctx.cost.clock_ghz) / iters as f64
}

fn main() {
    println!("==== Ablation: huge DMA buffers (§5.5) ====");
    println!(
        "{:<10} {:>16} {:>18} {:>16}",
        "size", "hybrid us/op", "identity+ us/op", "full-copy us/op"
    );
    let cost = Arc::new(CostModel::haswell_2_4ghz());
    for size in [128 * 1024usize, 512 * 1024, 2 * 1024 * 1024] {
        let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
        let mmu = Arc::new(Iommu::new());
        let shadow = ShadowDma::new(mem.clone(), mmu.clone(), DEV, PoolConfig::default());
        let identity = IdentityDma::strict(mem.clone(), mmu.clone(), DEV);
        let mut ctx = CoreCtx::new(CoreId(0), cost.clone());
        ctx.seek(Cycles(1));
        let pfn = mem
            .alloc_frames(memsim::NumaDomain(0), (size / PAGE_SIZE) as u64 + 1)
            .expect("buffer frames");
        // Unaligned start so the hybrid path actually shadows head+tail.
        let buf = DmaBuf::new(pfn.base().add(100), size);

        let hybrid = run_cycle(&shadow, &mut ctx, buf, 50);
        let ident = run_cycle(&identity, &mut ctx, buf, 50);
        // Full copy (what naive shadowing would do): two memcpys of the
        // whole buffer plus pool bookkeeping.
        let full = (cost.memcpy(size, false) * 2 + cost.shadow_pool_op * 2)
            .to_micros(cost.clock_ghz)
            + cost.cache_pollution(size).to_micros(cost.clock_ghz) * 2.0;
        println!(
            "{:<10} {:>16.2} {:>18.2} {:>16.2}",
            format!("{}KB", size / 1024),
            hybrid,
            ident,
            full
        );
    }
    println!("\n(hybrid ~ strict zero-copy, both far below full copying; DMA rates");
    println!(" for such buffers are low, so the invalidation is affordable — §5.5)");
}
