//! Criterion micro-benchmarks of this implementation's hot paths (host
//! time, not simulated time): shadow pool operations, IOVA codec,
//! IOTLB, page table, and full map/unmap cycles per engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dma_api::{DmaBuf, DmaDirection, DmaEngine, IdentityDma, LinuxDma, NoIommu};
use iommu::{DeviceId, Iommu, Iotlb, IovaPage, IoPageTable, Perms, PtEntry};
use memsim::{NumaDomain, NumaTopology, PhysMemory, Pfn};
use shadow_core::{IovaCodec, PoolConfig, ShadowDma, ShadowPool};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

const DEV: DeviceId = DeviceId(0);

fn ctx() -> CoreCtx {
    let mut c = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    c.seek(Cycles(1));
    c
}

fn rig() -> (Arc<PhysMemory>, Arc<Iommu>) {
    (
        Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell())),
        Arc::new(Iommu::new()),
    )
}

fn bench_pool(c: &mut Criterion) {
    let (mem, mmu) = rig();
    let pool = ShadowPool::new(mem.clone(), mmu, DEV, PoolConfig::default());
    let pfn = mem.alloc_frames(NumaDomain(0), 1).unwrap();
    let buf = DmaBuf::new(pfn.base(), 1500);
    let mut cx = ctx();
    // Warm the free list.
    let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
    pool.release_shadow(&mut cx, iova).unwrap();

    c.bench_function("pool_acquire_release_warm", |b| {
        b.iter(|| {
            let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
            pool.release_shadow(&mut cx, iova).unwrap();
        })
    });
    let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
    c.bench_function("pool_find_shadow", |b| {
        b.iter(|| pool.find_shadow(std::hint::black_box(iova)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let codec = IovaCodec::paper_default();
    let iova = codec.encode(CoreId(5), Perms::Write, 1, 1234);
    c.bench_function("iova_encode", |b| {
        b.iter(|| codec.encode(CoreId(5), Perms::Write, 1, std::hint::black_box(1234)))
    });
    c.bench_function("iova_decode", |b| {
        b.iter(|| codec.decode(std::hint::black_box(iova)))
    });
}

fn bench_iotlb(c: &mut Criterion) {
    let mut tlb = Iotlb::new(4096);
    let e = PtEntry {
        pfn: Pfn(7),
        perms: Perms::ReadWrite,
    };
    for i in 0..1024 {
        tlb.insert(DEV, IovaPage(i), e);
    }
    c.bench_function("iotlb_lookup_hit", |b| {
        b.iter(|| tlb.lookup(DEV, IovaPage(std::hint::black_box(512))))
    });
    c.bench_function("iotlb_insert_evict", |b| {
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            tlb.insert(DEV, IovaPage(i), e);
        })
    });
}

fn bench_pagetable(c: &mut Criterion) {
    c.bench_function("pagetable_map_unmap", |b| {
        b.iter_batched(
            IoPageTable::new,
            |mut pt| {
                pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
                pt.unmap(IovaPage(0x1234)).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    let mut pt = IoPageTable::new();
    pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
    c.bench_function("pagetable_translate", |b| {
        b.iter(|| pt.translate(IovaPage(std::hint::black_box(0x1234))))
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_unmap_1500B");
    type EngineCtor = fn(Arc<PhysMemory>, Arc<Iommu>) -> Box<dyn DmaEngine>;
    let engines: [(&str, EngineCtor); 4] = [
        ("no_iommu", |mem, _| Box::new(NoIommu::new(mem, DEV))),
        ("copy", |mem, mmu| {
            Box::new(ShadowDma::new(mem, mmu, DEV, PoolConfig::default()))
        }),
        ("identity_strict", |mem, mmu| {
            Box::new(IdentityDma::strict(mem, mmu, DEV))
        }),
        ("linux_strict", |mem, mmu| {
            Box::new(LinuxDma::strict(mem, mmu, DEV))
        }),
    ];
    for (name, make) in engines {
        let (mem, mmu) = rig();
        let engine = make(mem.clone(), mmu);
        let pfn = mem.alloc_frames(NumaDomain(0), 1).unwrap();
        let buf = DmaBuf::new(pfn.base(), 1500);
        let mut cx = ctx();
        group.bench_function(name, |b| {
            b.iter(|| {
                let m = engine.map(&mut cx, buf, DmaDirection::FromDevice).unwrap();
                engine.unmap(&mut cx, m).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pool, bench_codec, bench_iotlb, bench_pagetable, bench_engines
);
criterion_main!(benches);
