//! Micro-benchmarks of this implementation's hot paths (host time, not
//! simulated time): shadow pool operations, IOVA codec, IOTLB, page
//! table, and full map/unmap cycles per engine. Self-contained timing
//! harness (the workspace builds offline, so no criterion).

use dma_api::{DmaBuf, DmaDirection, DmaEngine, IdentityDma, LinuxDma, NoIommu};
use iommu::{DeviceId, IoPageTable, Iommu, Iotlb, IovaPage, Perms, PtEntry};
use memsim::{NumaDomain, NumaTopology, Pfn, PhysMemory};
use shadow_core::{IovaCodec, PoolConfig, ShadowDma, ShadowPool};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;
use std::time::Instant;

const DEV: DeviceId = DeviceId(0);

fn ctx() -> CoreCtx {
    let mut c = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    c.seek(Cycles(1));
    c
}

fn rig() -> (Arc<PhysMemory>, Arc<Iommu>) {
    (
        Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell())),
        Arc::new(Iommu::new()),
    )
}

/// Times `f` over enough iterations for a stable ns/op estimate and
/// prints one aligned row.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up.
    for _ in 0..1_000 {
        f();
    }
    // Scale the iteration count to roughly 50 ms of work.
    let probe = Instant::now();
    for _ in 0..10_000 {
        f();
    }
    let per = probe.elapsed().as_nanos().max(1) as u64 / 10_000;
    let iters = (50_000_000 / per.max(1)).clamp(10_000, 5_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<32} {ns:>10.1} ns/op   ({iters} iters)");
}

fn bench_pool() {
    let (mem, mmu) = rig();
    let pool = ShadowPool::new(mem.clone(), mmu, DEV, PoolConfig::default());
    let pfn = mem.alloc_frames(NumaDomain(0), 1).unwrap();
    let buf = DmaBuf::new(pfn.base(), 1500);
    let mut cx = ctx();
    // Warm the free list.
    let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
    pool.release_shadow(&mut cx, iova).unwrap();

    bench("pool_acquire_release_warm", || {
        let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
        pool.release_shadow(&mut cx, iova).unwrap();
    });
    let iova = pool.acquire_shadow(&mut cx, buf, Perms::Write).unwrap();
    bench("pool_find_shadow", || {
        std::hint::black_box(pool.find_shadow(std::hint::black_box(iova)));
    });
}

fn bench_codec() {
    let codec = IovaCodec::paper_default();
    let iova = codec.encode(CoreId(5), Perms::Write, 1, 1234);
    bench("iova_encode", || {
        std::hint::black_box(codec.encode(CoreId(5), Perms::Write, 1, std::hint::black_box(1234)));
    });
    bench("iova_decode", || {
        std::hint::black_box(codec.decode(std::hint::black_box(iova)));
    });
}

fn bench_iotlb() {
    let mut tlb = Iotlb::new(4096);
    let e = PtEntry {
        pfn: Pfn(7),
        perms: Perms::ReadWrite,
    };
    for i in 0..1024 {
        tlb.insert(DEV, IovaPage(i), e);
    }
    bench("iotlb_lookup_hit", || {
        std::hint::black_box(tlb.lookup(DEV, IovaPage(std::hint::black_box(512))));
    });
    let mut i = 10_000u64;
    bench("iotlb_insert_evict", || {
        i += 1;
        tlb.insert(DEV, IovaPage(i), e);
    });
}

fn bench_pagetable() {
    bench("pagetable_map_unmap", || {
        let mut pt = IoPageTable::new();
        pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
        pt.unmap(IovaPage(0x1234)).unwrap();
    });
    let mut pt = IoPageTable::new();
    pt.map(IovaPage(0x1234), Pfn(1), Perms::Read).unwrap();
    bench("pagetable_translate", || {
        std::hint::black_box(pt.translate(IovaPage(std::hint::black_box(0x1234))));
    });
}

fn bench_engines() {
    type EngineCtor = fn(Arc<PhysMemory>, Arc<Iommu>) -> Box<dyn DmaEngine>;
    let engines: [(&str, EngineCtor); 4] = [
        ("no_iommu", |mem, _| Box::new(NoIommu::new(mem, DEV))),
        ("copy", |mem, mmu| {
            Box::new(ShadowDma::new(mem, mmu, DEV, PoolConfig::default()))
        }),
        ("identity_strict", |mem, mmu| {
            Box::new(IdentityDma::strict(mem, mmu, DEV))
        }),
        ("linux_strict", |mem, mmu| {
            Box::new(LinuxDma::strict(mem, mmu, DEV))
        }),
    ];
    for (name, make) in engines {
        let (mem, mmu) = rig();
        let engine = make(mem.clone(), mmu);
        let pfn = mem.alloc_frames(NumaDomain(0), 1).unwrap();
        let buf = DmaBuf::new(pfn.base(), 1500);
        let mut cx = ctx();
        bench(&format!("map_unmap_1500B/{name}"), || {
            let m = engine.map(&mut cx, buf, DmaDirection::FromDevice).unwrap();
            engine.unmap(&mut cx, m).unwrap();
        });
    }
}

fn main() {
    println!("micro-benchmarks (host time)");
    bench_pool();
    bench_codec();
    bench_iotlb();
    bench_pagetable();
    bench_engines();
}
