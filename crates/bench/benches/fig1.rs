//! Figure 1: Linux TCP throughput (1500 B packets) over 40 Gb/s ethernet,
//! single netperf instance and 16 instances, across all six engines —
//! including the stock-Linux strict/defer baselines.

use netsim::{tcp_stream_rx, EngineKind};

fn main() {
    // 1500 B packets on the wire = MTU-sized stream messages.
    for cores in [1usize, 16] {
        let cfg = bench::figure_cfg(cores, 1500);
        let rows: Vec<_> = EngineKind::ALL
            .iter()
            .map(|&k| tcp_stream_rx(k, &cfg))
            .collect();
        println!(
            "{}",
            netsim::format_table(
                &format!("==== Figure 1: TCP RX throughput, 1500 B, {cores} core(s) ===="),
                &rows,
                "no iommu"
            )
        );
    }
}
