//! Figure 9: TCP latency (single-core netperf TCP request/response).

use netsim::tcp_rr;

fn main() {
    println!("==== Figure 9: TCP request/response latency ====");
    println!(
        "{:<10} {:>8} {:>12} {:>8} {:>8}",
        "engine", "msgsize", "latency(us)", "rel", "cpu%"
    );
    for &size in &bench::MSG_SIZES {
        let cfg = netsim::ExpConfig {
            msg_size: size,
            items_per_core: 3_000,
            warmup_per_core: 300,
            ..netsim::ExpConfig::default()
        };
        let rows: Vec<_> = bench::FIGURE_ENGINES
            .iter()
            .map(|&k| tcp_rr(k, &cfg))
            .collect();
        let base = rows[0].latency_us.unwrap();
        for r in &rows {
            let l = r.latency_us.unwrap();
            println!(
                "{:<10} {:>8} {:>12.1} {:>8.2} {:>8.1}",
                r.engine,
                size,
                l,
                l / base,
                r.cpu * 100.0
            );
        }
        println!();
    }
}
