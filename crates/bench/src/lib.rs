//! # bench — the experiment harness
//!
//! One `cargo bench` target per table/figure of the paper's evaluation
//! (`table1`, `fig1`, `fig3`–`fig11`, `memfootprint`), the ablation
//! studies DESIGN.md calls out (`ablate_*`), and criterion
//! micro-benchmarks of this implementation's own hot paths (`micro`).
//!
//! Every figure bench prints the same rows/series the paper reports:
//! throughput + relative throughput + CPU% + relative CPU across the
//! paper's message sizes, or the corresponding breakdown/latency/
//! transaction numbers. `EXPERIMENTS.md` records paper-vs-measured for
//! each.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;

use netsim::{EngineKind, ExpConfig, ExpResult};

/// The message sizes on the x-axis of Figures 3, 4, 6, 7 and 9.
pub const MSG_SIZES: [usize; 6] = [64, 256, 1024, 4096, 16 * 1024, 64 * 1024];

/// The engines plotted in Figures 3–11.
pub const FIGURE_ENGINES: [EngineKind; 4] = EngineKind::FIGURE_SET;

/// Standard experiment configuration for figure benches.
///
/// Item counts scale down with core count so the 16-core figures finish in
/// reasonable host time while still simulating hundreds of thousands of
/// packets; results are deterministic either way.
pub fn figure_cfg(cores: usize, msg_size: usize) -> ExpConfig {
    let items = if cores > 1 { 4_000 } else { 20_000 };
    ExpConfig {
        cores,
        msg_size,
        items_per_core: items,
        warmup_per_core: items / 10,
        ..ExpConfig::default()
    }
}

/// Runs `f` over every figure engine at one `(cores, msg_size)` point.
pub fn run_engines(
    cores: usize,
    msg_size: usize,
    f: impl Fn(EngineKind, &ExpConfig) -> ExpResult,
) -> Vec<ExpResult> {
    let cfg = figure_cfg(cores, msg_size);
    FIGURE_ENGINES.iter().map(|&k| f(k, &cfg)).collect()
}

/// Prints a figure: one table per message size, plus a one-line summary of
/// copy's relative throughput per size (the paper's "relative" panels).
pub fn print_figure(
    title: &str,
    cores: usize,
    sizes: &[usize],
    f: impl Fn(EngineKind, &ExpConfig) -> ExpResult,
) {
    println!("==== {title} ====");
    let mut rel_line = Vec::new();
    for &size in sizes {
        let rows = run_engines(cores, size, &f);
        println!(
            "{}",
            netsim::format_table(&format!("message size {size} B"), &rows, "no iommu")
        );
        let base = rows.iter().find(|r| r.engine == "no iommu");
        let copy = rows.iter().find(|r| r.engine == "copy");
        if let (Some(b), Some(c)) = (base, copy) {
            rel_line.push(format!("{}B:{:.2}", size, c.relative_gbps(b)));
        }
    }
    println!(
        "copy relative throughput vs no-iommu: {}\n",
        rel_line.join("  ")
    );
}

/// Prints the per-phase packet-time breakdown of each engine at one point
/// (Figures 5, 8 and 10).
pub fn print_breakdown(title: &str, rows: &[ExpResult]) {
    println!("==== {title} ====");
    for r in rows {
        println!(
            "{:<10} total {:>7.2} us/item | {}",
            r.engine,
            r.us_per_item(),
            netsim::format_breakdown_us(&r.per_item, r.clock_ghz)
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_cfg_scales_items() {
        assert_eq!(figure_cfg(1, 64).items_per_core, 20_000);
        assert_eq!(figure_cfg(16, 64).items_per_core, 4_000);
        assert_eq!(figure_cfg(16, 64).cores, 16);
    }

    #[test]
    fn run_engines_covers_figure_set() {
        let cfg_small = ExpConfig {
            items_per_core: 200,
            warmup_per_core: 20,
            ..ExpConfig::quick()
        };
        let rows: Vec<ExpResult> = FIGURE_ENGINES
            .iter()
            .map(|&k| netsim::tcp_stream_rx(k, &cfg_small))
            .collect();
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.engine).collect();
        assert_eq!(names, ["no iommu", "copy", "identity-", "identity+"]);
    }
}
