//! Host wall-clock perf harness (`cargo bench -p bench --bench host`).
//!
//! Every other bench target reports **simulated** numbers, which are
//! deterministic and never regress by accident. This one times how long
//! the *host* takes to grind through the paper's hot loops — the fig1
//! 16-core stream, the fig5 breakdown run, and the map/unmap micro
//! loops — and records the result as one JSON line in `BENCH_HOST.json`
//! at the workspace root (the perf trajectory: one entry per recorded
//! run, oldest first).
//!
//! Modes (arguments after `--`):
//!
//! - *(none)* — run the workloads and print a table.
//! - `--record <label>` — run, print, and append an entry to the
//!   trajectory.
//! - `--check <label>` — run, compare against the trajectory entry
//!   **pinned by that label**, and exit non-zero if any workload is more
//!   than [`REGRESSION_THRESHOLD`] slower (the `ci.sh` gate). A missing
//!   or ambiguous label fails loudly: comparing against "whatever entry
//!   happens to be last" would let any `--record` silently move the
//!   goalposts.
//!
//! Host time is inherently noisy; each workload is timed [`RUNS`] times
//! and the minimum reported, and the 25% gate plus multi-second
//! workloads keeps the signal well above scheduler jitter.

// lint: allow(ambient-io) — the perf-trajectory harness must read/write BENCH_HOST.json at the workspace root
// lint: allow(panic) — a harness aborts loudly on malformed trajectory files or unwritable output

use crate::figure_cfg;
use dma_api::DmaBuf;
use iommu::{DeviceId, IoPageTable, Iotlb, IovaPage, Perms, PtEntry};
use memsim::{NumaDomain, NumaTopology, Pfn, PhysMemory};
use netsim::{tcp_stream_rx, EngineKind};
use obs::Json;
use shadow_core::{PoolConfig, ShadowPool};
use simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Relative slowdown vs. the checked-in baseline that fails `--check`.
pub const REGRESSION_THRESHOLD: f64 = 0.25;

/// Trajectory file name, kept at the workspace root next to the other
/// `BENCH_*.json` artifacts.
pub const BASELINE_FILE: &str = "BENCH_HOST.json";

const DEV: DeviceId = DeviceId(0);

fn zero_ctx() -> CoreCtx {
    let mut c = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    c.seek(Cycles(1));
    c
}

fn fig1_loop(cores: usize) {
    let cfg = figure_cfg(cores, 1500);
    for &k in EngineKind::ALL.iter() {
        std::hint::black_box(tcp_stream_rx(k, &cfg));
    }
}

fn fig5_loop() {
    let cfg = figure_cfg(1, 64 * 1024);
    for &k in EngineKind::FIGURE_SET.iter() {
        std::hint::black_box(tcp_stream_rx(k, &cfg));
    }
}

fn micro_pool_loop() {
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(iommu::Iommu::new());
    let pool = ShadowPool::new(mem.clone(), mmu, DEV, PoolConfig::default());
    let pfn = mem.alloc_frames(NumaDomain(0), 1).expect("frame");
    let buf = DmaBuf::new(pfn.base(), 1500);
    let mut cx = zero_ctx();
    for _ in 0..200_000 {
        let iova = pool
            .acquire_shadow(&mut cx, buf, Perms::Write)
            .expect("acquire");
        pool.release_shadow(&mut cx, iova).expect("release");
    }
}

fn micro_iotlb_loop() {
    let mut tlb = Iotlb::default_hw();
    let e = PtEntry {
        pfn: Pfn(7),
        perms: Perms::ReadWrite,
    };
    for i in 0..1024u64 {
        tlb.insert(DEV, IovaPage(i), e);
    }
    let mut acc = 0u64;
    for i in 0..2_000_000u64 {
        if tlb.lookup(DEV, IovaPage(i & 1023)).is_some() {
            acc += 1;
        }
        if i % 64 == 0 {
            tlb.insert(DEV, IovaPage(4096 + i), e);
        }
    }
    std::hint::black_box(acc);
}

fn micro_pagetable_loop() {
    let mut pt = IoPageTable::new();
    for i in 0..512u64 {
        pt.map(IovaPage(i << 12), Pfn(i), Perms::ReadWrite)
            .expect("map");
    }
    let mut acc = 0u64;
    for i in 0..2_000_000u64 {
        let page = IovaPage((i & 511) << 12);
        if pt.translate(page).is_some() {
            acc += 1;
        }
        if i % 32 == 0 {
            let p = IovaPage(0x9_0000_0000 + i);
            pt.map(p, Pfn(1), Perms::Read).expect("map");
            pt.unmap(p).expect("unmap");
        }
    }
    std::hint::black_box(acc);
}

fn micro_obs_loop() {
    // Profiler self-overhead: a task root with nested scopes and phase
    // charges per iteration, everything the hot paths do per packet. The
    // trajectory gate keeps the instrumentation from quietly getting
    // slower.
    use obs::profile;
    use simcore::Phase;
    let o = obs::Obs::isolated();
    o.profiler().set_enabled(true);
    let mut cx = zero_ctx();
    for i in 0..200_000u64 {
        profile::task_scope(&o, &mut cx, "bench", Some(0), "task", |cx| {
            profile::scope(cx, "map", |cx| {
                cx.charge(Phase::CopyMgmt, Cycles(10));
                profile::scope(cx, "inner", |cx| {
                    cx.charge(Phase::Memcpy, Cycles(i & 7));
                });
            });
            profile::scope(cx, "unmap", |cx| {
                cx.charge(Phase::Other, Cycles(5));
            });
        });
    }
    std::hint::black_box(o.profiler().snapshot());
}

fn micro_sched_loop() {
    // Scheduler-only churn: tasks do nothing but charge pseudo-random
    // increments, so wall-clock is dominated by timing-wheel push/pop —
    // once at the figure population (16 cores), once at the scaling-sweep
    // ceiling (256 cores), where the old `BinaryHeap` paid log(n) per
    // reschedule.
    use simcore::{CoreTask, MultiCoreSim, Phase, StepOutcome};
    for &(cores, steps_per_core) in &[(16usize, 60_000u64), (256, 4_000)] {
        let mut sim = MultiCoreSim::new(Arc::new(CostModel::zero()), cores);
        let mut tasks: Vec<Box<dyn CoreTask>> = (0..cores)
            .map(|i| {
                let mut remaining = steps_per_core;
                let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ ((i as u64) << 32);
                Box::new(move |ctx: &mut CoreCtx| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    // Mixed near/far deltas exercise same-slot pushes,
                    // level cascades, and the overflow heap.
                    ctx.charge(Phase::Other, Cycles(1 + (seed % 700)));
                    remaining -= 1;
                    if remaining == 0 {
                        StepOutcome::Done
                    } else {
                        StepOutcome::Continue
                    }
                }) as Box<dyn CoreTask>
            })
            .collect();
        std::hint::black_box(sim.run(&mut tasks, Cycles::MAX));
    }
}

/// The harness workloads, in reporting order. `fig1_16core` is the
/// headline number the perf trajectory tracks.
pub fn workloads() -> Vec<(&'static str, fn())> {
    vec![
        ("fig1_16core", (|| fig1_loop(16)) as fn()),
        ("fig1_1core", || fig1_loop(1)),
        ("fig5_rx", fig5_loop),
        ("micro_pool", micro_pool_loop),
        ("micro_iotlb", micro_iotlb_loop),
        ("micro_pagetable", micro_pagetable_loop),
        ("micro_obs", micro_obs_loop),
        ("micro_sched", micro_sched_loop),
    ]
}

/// Repetitions per workload; the minimum is reported. Host wall-clock is
/// one-sided noise (scheduler preemption only ever adds time), so the
/// fastest of a few runs is the most reproducible statistic.
pub const RUNS: usize = 3;

/// Runs every workload [`RUNS`] times, returning `(name, best host
/// milliseconds)` rows.
pub fn measure_all() -> Vec<(String, f64)> {
    workloads()
        .into_iter()
        .map(|(name, f)| {
            let mut best = f64::INFINITY;
            for _ in 0..RUNS {
                let start = Instant::now();
                f();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
            }
            println!("{name:<18} {best:>10.1} ms");
            (name.to_string(), best)
        })
        .collect()
}

/// One trajectory entry as a JSON-lines object (schema follows the
/// `BENCH_*.json` convention of a `type` discriminator per line).
pub fn entry_json(label: &str, results: &[(String, f64)]) -> Json {
    let ms = results
        .iter()
        .map(|(k, v)| (k.clone(), Json::Float((*v * 10.0).round() / 10.0)))
        .collect();
    Json::Obj(vec![
        ("type".into(), Json::Str("host-bench".into())),
        ("label".into(), Json::Str(label.into())),
        ("ms".into(), Json::Obj(ms)),
    ])
}

/// Parses a trajectory file's JSON lines, oldest first.
pub fn parse_trajectory(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Json::parse)
        .collect()
}

/// Workloads in `current` that regressed more than `threshold` vs. the
/// baseline entry's `ms` object. Workloads absent from the baseline are
/// ignored (they are new).
pub fn regressions(current: &[(String, f64)], baseline: &Json, threshold: f64) -> Vec<String> {
    let mut out = Vec::new();
    let Some(Json::Obj(base_ms)) = baseline.get("ms") else {
        return vec!["baseline entry has no `ms` object".into()];
    };
    for (name, now) in current {
        let base = base_ms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| match v {
                Json::Float(f) => *f,
                Json::UInt(u) => *u as f64,
                Json::Int(i) => *i as f64,
                _ => f64::NAN,
            });
        if let Some(base) = base {
            if base.is_finite() && base > 0.0 && *now > base * (1.0 + threshold) {
                out.push(format!(
                    "{name}: {now:.1} ms vs baseline {base:.1} ms (+{:.0}%, limit +{:.0}%)",
                    (now / base - 1.0) * 100.0,
                    threshold * 100.0
                ));
            }
        }
    }
    out
}

fn ms_of(entry: &Json, workload: &str) -> Option<f64> {
    let Some(Json::Obj(ms)) = entry.get("ms") else {
        return None;
    };
    ms.iter()
        .find(|(k, _)| k == workload)
        .map(|(_, v)| match v {
            Json::Float(f) => *f,
            Json::UInt(u) => *u as f64,
            Json::Int(i) => *i as f64,
            _ => f64::NAN,
        })
}

/// Renders the perf-trajectory trend: one line per workload walking the
/// labeled entries oldest→newest with the per-step delta, and a flag on
/// every workload whose latest entry is slower than its historical best
/// (the improvement trajectory went backwards and nobody re-recorded a
/// faster baseline).
pub fn trend_report(trajectory: &[Json]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "host-bench trend ({} entries)", trajectory.len());
    // Workload names in first-seen order across all entries.
    let mut names: Vec<String> = Vec::new();
    for e in trajectory {
        if let Some(Json::Obj(ms)) = e.get("ms") {
            for (k, _) in ms {
                if !names.contains(k) {
                    names.push(k.clone());
                }
            }
        }
    }
    let mut flagged = Vec::new();
    for name in &names {
        let mut line = format!("{name:<16}");
        let mut prev: Option<f64> = None;
        let mut best: Option<(f64, &str)> = None;
        let mut latest: Option<f64> = None;
        for e in trajectory {
            let label = e.get("label").and_then(Json::as_str).unwrap_or("?");
            let Some(v) = ms_of(e, name) else { continue };
            match prev {
                None => {
                    let _ = write!(line, " {v:.1} [{label}]");
                }
                Some(p) => {
                    let _ = write!(
                        line,
                        " -> {v:.1} ({:+.1}%) [{label}]",
                        (v / p - 1.0) * 100.0
                    );
                }
            }
            prev = Some(v);
            latest = Some(v);
            if best.is_none_or(|(b, _)| v < b) {
                best = Some((v, label));
            }
        }
        let _ = writeln!(out, "{line}");
        if let (Some((b, blabel)), Some(l)) = (best, latest) {
            if l > b {
                flagged.push(format!(
                    "  {name}: latest {l:.1} ms is +{:.1}% over its best \
                     {b:.1} ms [{blabel}]",
                    (l / b - 1.0) * 100.0
                ));
            }
        }
    }
    if flagged.is_empty() {
        let _ = writeln!(out, "no workload is slower than its historical best");
    } else {
        let _ = writeln!(out, "regressed since best:");
        for f in flagged {
            let _ = writeln!(out, "{f}");
        }
    }
    out
}

/// The unique trajectory entry labeled `label`. The check gate pins its
/// baseline by label so appending new entries (`--record`) can never
/// silently change what `--check` compares against.
pub fn find_baseline<'a>(trajectory: &'a [Json], label: &str) -> Result<&'a Json, String> {
    let hits: Vec<&Json> = trajectory
        .iter()
        .filter(|e| e.get("label").and_then(Json::as_str) == Some(label))
        .collect();
    match hits.len() {
        0 => {
            let known: Vec<&str> = trajectory
                .iter()
                .filter_map(|e| e.get("label").and_then(Json::as_str))
                .collect();
            Err(format!(
                "no trajectory entry labeled '{label}' (recorded labels: {})",
                if known.is_empty() {
                    "none".to_string()
                } else {
                    known.join(", ")
                }
            ))
        }
        1 => Ok(hits[0]),
        n => Err(format!(
            "{n} trajectory entries labeled '{label}'; labels must be \
             unique to pin a baseline — re-record under a fresh label"
        )),
    }
}

/// Workspace-root path of the trajectory file.
pub fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../".to_string() + BASELINE_FILE)
}

/// Entry point for the `host` bench target. Returns the process exit
/// code. Unrecognized arguments (e.g. cargo's own `--bench`) are
/// ignored.
pub fn run(args: &[String]) -> i32 {
    let record_label = args
        .iter()
        .position(|a| a == "--record")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // `--check` requires the baseline label to pin against; reject the
    // bare form before spending minutes measuring.
    let check_label = match args.iter().position(|a| a == "--check") {
        Some(i) => match args.get(i + 1).filter(|a| !a.starts_with("--")) {
            Some(l) => Some(l.clone()),
            None => {
                eprintln!(
                    "--check requires a baseline label, e.g. \
                     `--check post-percore`; see {BASELINE_FILE} for \
                     recorded labels"
                );
                return 1;
            }
        },
        None => None,
    };
    let path = baseline_path();

    // `--trend <out-path>` renders the trajectory report without running
    // any workload — it only reads BENCH_HOST.json, so CI can produce the
    // artifact cheaply before the measuring gate.
    if let Some(i) = args.iter().position(|a| a == "--trend") {
        let Some(out_path) = args.get(i + 1).filter(|a| !a.starts_with("--")) else {
            eprintln!("--trend requires an output path, e.g. `--trend target/bench_trend.txt`");
            return 1;
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("no {BASELINE_FILE} at {} ({e})", path.display());
                return 1;
            }
        };
        let trajectory = match parse_trajectory(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("malformed {BASELINE_FILE}: {e}");
                return 1;
            }
        };
        let report = trend_report(&trajectory);
        print!("{report}");
        // Cargo runs bench binaries from the package dir, so anchor a
        // relative out-path at the workspace root (like BENCH_HOST.json).
        let out = if Path::new(out_path).is_absolute() {
            PathBuf::from(out_path)
        } else {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(out_path)
        };
        if let Err(e) = std::fs::write(&out, &report) {
            eprintln!("failed to write {}: {e}", out.display());
            return 1;
        }
        println!("trend report written to {out_path}");
        return 0;
    }

    println!("host-time harness ({} workloads)", workloads().len());
    let results = measure_all();

    if let Some(label) = record_label {
        let line = entry_json(&label, &results).encode();
        let mut text = std::fs::read_to_string(&path).unwrap_or_default();
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&line);
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
        println!("recorded entry '{label}' in {}", path.display());
    }

    if let Some(label) = check_label {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "no {BASELINE_FILE} baseline at {} ({e}); record one with \
                     `cargo bench -p bench --bench host -- --record <label>`",
                    path.display()
                );
                return 1;
            }
        };
        let trajectory = match parse_trajectory(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("malformed {BASELINE_FILE}: {e}");
                return 1;
            }
        };
        let baseline = match find_baseline(&trajectory, &label) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{BASELINE_FILE}: {e}");
                return 1;
            }
        };
        let bad = regressions(&results, baseline, REGRESSION_THRESHOLD);
        if bad.is_empty() {
            println!(
                "within {:.0}% of baseline '{label}'",
                REGRESSION_THRESHOLD * 100.0
            );
        } else {
            eprintln!("host-time regression vs baseline '{label}':");
            for b in &bad {
                eprintln!("  {b}");
            }
            return 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn entry_roundtrips_through_json_lines() {
        let e = entry_json(
            "pre",
            &res(&[("fig1_16core", 1234.56), ("micro_pool", 7.0)]),
        );
        let text = format!("{}\n{}\n", e.encode(), e.encode());
        let t = parse_trajectory(&text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].get("label").unwrap().as_str(), Some("pre"));
        assert_eq!(
            t[1].get("ms").unwrap().get("fig1_16core"),
            Some(&Json::Float(1234.6)),
            "milliseconds rounded to one decimal"
        );
    }

    #[test]
    fn regression_gate_math() {
        let base = entry_json("base", &res(&[("a", 100.0), ("b", 100.0)]));
        // Under the limit: pass.
        assert!(regressions(&res(&[("a", 120.0), ("b", 90.0)]), &base, 0.25).is_empty());
        // 30% slower on `a`: fail, naming the workload.
        let bad = regressions(&res(&[("a", 130.0), ("b", 100.0)]), &base, 0.25);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].starts_with("a:"), "{bad:?}");
        // Workloads unknown to the baseline are ignored.
        assert!(regressions(&res(&[("new", 9e9)]), &base, 0.25).is_empty());
    }

    #[test]
    fn malformed_baseline_is_reported() {
        let no_ms = Json::Obj(vec![("label".into(), Json::Str("x".into()))]);
        assert_eq!(regressions(&res(&[("a", 1.0)]), &no_ms, 0.25).len(), 1);
    }

    #[test]
    fn check_pins_its_baseline_by_label() {
        let t = vec![
            entry_json("pre", &res(&[("a", 100.0)])),
            entry_json("post", &res(&[("a", 50.0)])),
        ];
        // The pinned entry is found regardless of trajectory position —
        // appending newer entries cannot move the goalposts.
        let b = find_baseline(&t, "pre").unwrap();
        assert_eq!(b.get("ms").unwrap().get("a"), Some(&Json::Float(100.0)));
        let b = find_baseline(&t, "post").unwrap();
        assert_eq!(b.get("ms").unwrap().get("a"), Some(&Json::Float(50.0)));
    }

    #[test]
    fn missing_baseline_label_fails_loudly() {
        let t = vec![entry_json("pre", &res(&[("a", 1.0)]))];
        let e = find_baseline(&t, "nope").unwrap_err();
        assert!(e.contains("nope") && e.contains("pre"), "{e}");
        let e = find_baseline(&[], "nope").unwrap_err();
        assert!(e.contains("none"), "{e}");
    }

    #[test]
    fn ambiguous_baseline_label_fails_loudly() {
        let t = vec![
            entry_json("dup", &res(&[("a", 1.0)])),
            entry_json("dup", &res(&[("a", 2.0)])),
        ];
        let e = find_baseline(&t, "dup").unwrap_err();
        assert!(e.contains("2") && e.contains("unique"), "{e}");
    }

    #[test]
    fn trend_walks_labels_and_flags_regressions_since_best() {
        let t = vec![
            entry_json("pre", &res(&[("a", 100.0), ("b", 10.0)])),
            entry_json("mid", &res(&[("a", 50.0), ("b", 12.0)])),
            entry_json("now", &res(&[("a", 60.0), ("b", 9.0)])),
        ];
        let r = trend_report(&t);
        // Walks oldest→newest with per-step deltas.
        assert!(r.contains("100.0 [pre]"), "{r}");
        assert!(r.contains("-> 50.0 (-50.0%) [mid]"), "{r}");
        assert!(r.contains("-> 60.0 (+20.0%) [now]"), "{r}");
        // `a` is above its best (50.0 at mid) — flagged; `b` is at its
        // best — not flagged.
        assert!(r.contains("regressed since best"), "{r}");
        assert!(
            r.contains("a: latest 60.0 ms is +20.0% over its best 50.0 ms [mid]"),
            "{r}"
        );
        assert!(!r.contains("b: latest"), "{r}");
    }

    #[test]
    fn trend_with_monotone_improvement_has_no_flags() {
        let t = vec![
            entry_json("pre", &res(&[("a", 100.0)])),
            entry_json("now", &res(&[("a", 80.0)])),
        ];
        let r = trend_report(&t);
        assert!(
            r.contains("no workload is slower than its historical best"),
            "{r}"
        );
    }

    #[test]
    fn trend_handles_workloads_added_mid_history() {
        // `micro_obs` first appears at post-profiler; its line must start
        // at that entry rather than misaligning deltas.
        let t = vec![
            entry_json("pre", &res(&[("a", 100.0)])),
            entry_json("now", &res(&[("a", 90.0), ("new", 5.0)])),
        ];
        let r = trend_report(&t);
        assert!(r.contains("new") && r.contains("5.0 [now]"), "{r}");
    }
}
