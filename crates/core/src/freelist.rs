//! The per-(core, size class, rights) shadow-buffer free list (§5.3).
//!
//! The list is a singly linked queue threaded through the metadata slots'
//! `next` fields (free slots double as list nodes, Figure 2):
//!
//! - **Acquire** (pop from the head) is performed *only by the owner core*
//!   and is lock-free, except when the list holds a single node — then the
//!   pop briefly takes the tail lock to resolve the race with a concurrent
//!   release appending to that same node.
//! - **Release** (push to the tail) may come from *any* core and runs under
//!   a lock co-located with the tail pointer. If the list was empty the
//!   head pointer is updated too — safe because an owner that found the
//!   list empty allocates a fresh buffer instead of retrying (§5.3).
//!
//! Head and tail state live apart (head is an atomic, tail is inside the
//! lock) mirroring the paper's separate-cache-line layout.

// lint: allow(relaxed-atomic) — `len` is advisory occupancy telemetry;
// list integrity is carried by the head CAS and the tail lock, never by
// the length counter

use crate::slot::{MetadataArray, NIL};
use simcore::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shadow-buffer free list.
#[derive(Debug)]
pub struct FreeList {
    /// Head slot index, or `NIL`. Written by the owner core's pops and by
    /// releases that found the list empty (under the tail lock).
    head: AtomicU64,
    /// Tail slot index, or `NIL`. All release-side state is guarded here.
    tail: Mutex<u64>,
    /// Approximate length (exact under quiescence), for stats and reclaim.
    len: AtomicU64,
}

impl Default for FreeList {
    fn default() -> Self {
        Self::new()
    }
}

impl FreeList {
    /// Creates an empty list.
    pub fn new() -> Self {
        FreeList {
            head: AtomicU64::new(NIL),
            tail: Mutex::new(NIL),
            len: AtomicU64::new(0),
        }
    }

    /// Approximate number of free buffers in the list.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the list is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the head slot. **Must only be called by the list's owner
    /// core** (single consumer); violating this is a protocol bug.
    pub(crate) fn pop(&self, slots: &MetadataArray) -> Option<u64> {
        let h = self.head.load(Ordering::Acquire);
        if h == NIL {
            return None;
        }
        let next = slots.slot(h).next.load(Ordering::Acquire);
        if next != NIL {
            // ≥2 nodes: releases touch only the tail; the pop is private.
            self.head.store(next, Ordering::Release);
        } else {
            // Possibly the last node: serialize with releases, which may be
            // concurrently linking a new node behind `h`.
            let mut tail = self.tail.lock();
            let next = slots.slot(h).next.load(Ordering::Acquire);
            if next == NIL {
                debug_assert_eq!(*tail, h, "single node must be the tail");
                self.head.store(NIL, Ordering::Release);
                *tail = NIL;
            } else {
                self.head.store(next, Ordering::Release);
            }
        }
        slots.slot(h).next.store(NIL, Ordering::Release);
        self.len.fetch_sub(1, Ordering::Relaxed);
        Some(h)
    }

    /// Appends a slot to the tail; callable from any core.
    pub(crate) fn push(&self, slots: &MetadataArray, index: u64) {
        slots.slot(index).next.store(NIL, Ordering::Release);
        let mut tail = self.tail.lock();
        if *tail == NIL {
            debug_assert_eq!(self.head.load(Ordering::Acquire), NIL);
            self.head.store(index, Ordering::Release);
        } else {
            slots.slot(*tail).next.store(index, Ordering::Release);
        }
        *tail = index;
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains up to `max` slots from the list (owner core only); used by
    /// memory-pressure reclaim.
    pub(crate) fn drain(&self, slots: &MetadataArray, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop(slots) {
                Some(i) => out.push(i),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(n: u64) -> MetadataArray {
        let a = MetadataArray::new(n);
        for _ in 0..n {
            a.reserve();
        }
        a
    }

    #[test]
    fn fifo_order() {
        let a = arr(4);
        let l = FreeList::new();
        for i in 0..4 {
            l.push(&a, i);
        }
        assert_eq!(l.len(), 4);
        for i in 0..4 {
            assert_eq!(l.pop(&a), Some(i));
        }
        assert_eq!(l.pop(&a), None);
        assert!(l.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let a = arr(8);
        let l = FreeList::new();
        l.push(&a, 0);
        assert_eq!(l.pop(&a), Some(0));
        assert_eq!(l.pop(&a), None);
        l.push(&a, 1);
        l.push(&a, 2);
        assert_eq!(l.pop(&a), Some(1));
        l.push(&a, 3);
        assert_eq!(l.pop(&a), Some(2));
        assert_eq!(l.pop(&a), Some(3));
        assert_eq!(l.pop(&a), None);
    }

    #[test]
    fn node_reusable_after_pop() {
        let a = arr(2);
        let l = FreeList::new();
        for _ in 0..100 {
            l.push(&a, 0);
            l.push(&a, 1);
            assert_eq!(l.pop(&a), Some(0));
            assert_eq!(l.pop(&a), Some(1));
        }
    }

    #[test]
    fn drain_respects_max() {
        let a = arr(6);
        let l = FreeList::new();
        for i in 0..6 {
            l.push(&a, i);
        }
        assert_eq!(l.drain(&a, 4), vec![0, 1, 2, 3]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.drain(&a, 10), vec![4, 5]);
    }

    #[test]
    fn concurrent_cross_core_release_owner_acquire() {
        // The paper's usage pattern: one owner core popping, many remote
        // cores releasing buffers back. Every pushed index must be popped
        // exactly once.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const N: u64 = 4000;
        const PRODUCERS: u64 = 4;
        let a = Arc::new(arr(N * PRODUCERS));
        let l = Arc::new(FreeList::new());
        let done = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let a = a.clone();
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..N {
                    l.push(&a, p * N + i);
                }
            }));
        }
        let consumer = {
            let a = a.clone();
            let l = l.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                loop {
                    match l.pop(&a) {
                        Some(i) => {
                            assert!(seen.insert(i), "index {i} popped twice");
                        }
                        None => {
                            if done.load(Ordering::Acquire) && l.pop(&a).is_none() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let seen = consumer.join().unwrap();
        assert_eq!(seen.len() as u64, N * PRODUCERS, "every buffer recovered");
        assert_eq!(l.len(), 0);
    }
}
