//! Shadow-buffer metadata: per-NUMA-domain slot arrays (§5.3).
//!
//! Each NUMA domain keeps one metadata array per size class. A slot is
//! addressed by the index encoded in the shadow buffer's IOVA, giving
//! O(1) `find_shadow`. Free slots double as free-list nodes: their `next`
//! field links them (Figure 2). Metadata is not IOMMU-mapped — the device
//! can never touch it.

use memsim::PhysAddr;
use simcore::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no slot" in `next` links and for unset fields.
pub(crate) const NIL: u64 = u64::MAX;

/// One shadow buffer's metadata.
///
/// All fields are atomics so the pool can be used from real threads; the
/// access protocol (a slot is owned either by a free list or by exactly one
/// live mapping) keeps plain load/store ordering sufficient, with
/// acquire/release on the free-list `next` link.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Physical base address of the shadow buffer; `NIL` until the slot is
    /// assigned a buffer (or after reclaim retires it).
    pub shadow_pa: AtomicU64,
    /// While acquired: the associated OS buffer's physical address.
    pub os_pa: AtomicU64,
    /// While acquired: the associated OS buffer's length in bytes.
    pub os_len: AtomicU64,
    /// While free: the next slot index in the owner free list.
    pub next: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            shadow_pa: AtomicU64::new(NIL),
            os_pa: AtomicU64::new(NIL),
            os_len: AtomicU64::new(0),
            next: AtomicU64::new(NIL),
        }
    }

    /// The shadow buffer's base address.
    ///
    /// # Panics
    ///
    /// Panics if the slot has no buffer assigned.
    pub fn shadow_base(&self) -> PhysAddr {
        let v = self.shadow_pa.load(Ordering::Acquire);
        assert_ne!(v, NIL, "slot has no shadow buffer");
        PhysAddr(v)
    }

    /// Records the OS buffer association (at acquire).
    pub fn associate(&self, os_pa: PhysAddr, len: usize) {
        self.os_pa.store(os_pa.get(), Ordering::Release);
        self.os_len.store(len as u64, Ordering::Release);
    }

    /// Reads the OS buffer association, if any.
    pub fn association(&self) -> Option<(PhysAddr, usize)> {
        let pa = self.os_pa.load(Ordering::Acquire);
        if pa == NIL {
            return None;
        }
        Some((PhysAddr(pa), self.os_len.load(Ordering::Acquire) as usize))
    }

    /// Clears the OS buffer association (at release).
    pub fn disassociate(&self) {
        self.os_pa.store(NIL, Ordering::Release);
        self.os_len.store(0, Ordering::Release);
    }
}

/// A fixed-capacity metadata array for one (NUMA domain, size class) pair.
///
/// Slots are handed out by a lock-protected next-unused index (allocation
/// is infrequent — paper footnote 5); retired slots (from memory-pressure
/// reclaim) are recycled before fresh ones.
#[derive(Debug)]
pub(crate) struct MetadataArray {
    slots: Box<[Slot]>,
    alloc: Mutex<AllocState>,
}

#[derive(Debug)]
struct AllocState {
    next_unused: u64,
    retired: Vec<u64>,
}

impl MetadataArray {
    /// Creates an array of `capacity` slots.
    pub fn new(capacity: u64) -> Self {
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::new()).collect();
        MetadataArray {
            slots: slots.into_boxed_slice(),
            alloc: Mutex::new(AllocState {
                next_unused: 0,
                retired: Vec::new(),
            }),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Number of slots handed out and not retired.
    #[allow(dead_code)] // used by tests and kept for introspection
    pub fn used(&self) -> u64 {
        let a = self.alloc.lock();
        a.next_unused - a.retired.len() as u64
    }

    /// The slot at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn slot(&self, index: u64) -> &Slot {
        &self.slots[index as usize]
    }

    /// Reserves one unused slot, preferring retired ones. Returns `None`
    /// when the array is exhausted (the caller falls back to the external
    /// hash-table path, §5.3).
    pub fn reserve(&self) -> Option<u64> {
        let mut a = self.alloc.lock();
        if let Some(idx) = a.retired.pop() {
            return Some(idx);
        }
        if a.next_unused < self.capacity() {
            let idx = a.next_unused;
            a.next_unused += 1;
            Some(idx)
        } else {
            None
        }
    }

    /// Reserves `n` consecutive slots with the first index aligned to `n`
    /// (`n` must be a power of two). Used when splitting one page into
    /// several sub-page shadow buffers so that all of them share one IOVA
    /// page. Never draws from the retired list (retired indices are
    /// singletons).
    pub fn reserve_aligned_run(&self, n: u64) -> Option<u64> {
        assert!(n.is_power_of_two());
        let mut a = self.alloc.lock();
        let start = a.next_unused.next_multiple_of(n);
        if start + n > self.capacity() {
            return None;
        }
        // Indices skipped by alignment become retirable singles.
        for i in a.next_unused..start {
            a.retired.push(i);
        }
        a.next_unused = start + n;
        Some(start)
    }

    /// Returns a slot to the allocator after its buffer was reclaimed.
    pub fn retire(&self, index: u64) {
        let slot = self.slot(index);
        slot.shadow_pa.store(NIL, Ordering::Release);
        slot.disassociate();
        self.alloc.lock().retired.push(index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_monotone_then_exhausts() {
        let a = MetadataArray::new(3);
        assert_eq!(a.reserve(), Some(0));
        assert_eq!(a.reserve(), Some(1));
        assert_eq!(a.reserve(), Some(2));
        assert_eq!(a.reserve(), None);
        assert_eq!(a.used(), 3);
    }

    #[test]
    fn retired_slots_are_recycled_first() {
        let a = MetadataArray::new(4);
        let i = a.reserve().unwrap();
        a.slot(i).shadow_pa.store(0x1000, Ordering::Release);
        a.retire(i);
        assert_eq!(a.used(), 0);
        assert_eq!(a.reserve(), Some(i), "retired slot reused");
        // Retirement cleared the stale buffer pointer.
        assert_eq!(a.slot(i).shadow_pa.load(Ordering::Acquire), NIL);
    }

    #[test]
    fn association_roundtrip() {
        let a = MetadataArray::new(1);
        let s = a.slot(0);
        assert_eq!(s.association(), None);
        s.associate(PhysAddr(0x42000), 1500);
        assert_eq!(s.association(), Some((PhysAddr(0x42000), 1500)));
        s.disassociate();
        assert_eq!(s.association(), None);
    }

    #[test]
    fn aligned_run_is_aligned() {
        let a = MetadataArray::new(32);
        assert_eq!(a.reserve(), Some(0)); // next_unused = 1
        let run = a.reserve_aligned_run(4).unwrap();
        assert_eq!(run % 4, 0);
        assert_eq!(run, 4, "skips to the next aligned index");
        // Skipped indices 1..4 are retirable and get recycled.
        assert_eq!(a.reserve(), Some(3));
        assert_eq!(a.reserve(), Some(2));
        assert_eq!(a.reserve(), Some(1));
        assert_eq!(a.reserve(), Some(8));
    }

    #[test]
    fn aligned_run_exhaustion() {
        let a = MetadataArray::new(7);
        assert_eq!(a.reserve_aligned_run(4), Some(0));
        assert_eq!(a.reserve_aligned_run(4), None, "4..8 exceeds capacity 7");
    }

    #[test]
    #[should_panic(expected = "no shadow buffer")]
    fn shadow_base_requires_assignment() {
        let a = MetadataArray::new(1);
        a.slot(0).shadow_base();
    }
}
