//! # shadow-core — DMA shadowing (the paper's contribution, §5)
//!
//! Implements intra-OS protection via **DMA shadowing**: the device is
//! restricted to a pool of *shadow DMA buffers* that are permanently mapped
//! in the IOMMU, and `dma_map`/`dma_unmap` copy data between OS buffers and
//! shadow buffers instead of mapping and unmapping IOVAs. Because shadow
//! buffers are never unmapped, no IOTLB invalidation ever happens on the
//! data path — and copying a typical DMA buffer is ~5× cheaper than an
//! invalidation. Protection is *strict* (no vulnerability window) and
//! *byte-granular* (the device never sees OS memory at all, only shadows
//! whose pages host same-rights shadow data exclusively).
//!
//! The crate provides:
//!
//! - [`ShadowPool`] — the per-device shadow buffer pool (§5.3, Table 2):
//!   a fast multi-threaded segregated free-list allocator with per-core
//!   lists, NUMA-sticky buffers, lockless owner-core acquire and
//!   tail-locked cross-core release, and O(1) [`ShadowPool::find_shadow`]
//!   via IOVA-encoded metadata indices (Figure 2).
//! - [`IovaCodec`] — the 48-bit IOVA encoding of Figure 2 (MSB flag,
//!   core id, access rights, size class, metadata index), generalized to
//!   configurable field widths.
//! - [`ShadowDma`] — the `DmaEngine` implementation (*copy* in the paper's
//!   figures), including copying hints (§5.4) and the hybrid huge-buffer
//!   path that copies only sub-page head/tails and zero-copy-maps the
//!   aligned middle (§5.5).
//!
//! The pool is safe for real multi-threaded use (its free lists use
//! atomics and a tail lock exactly as §5.3 describes) *and* is driven in
//! virtual time by the simulation harness.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enc;
mod engine;
mod freelist;
mod huge;
mod pool;
mod slot;

pub use enc::{DecodedIova, IovaCodec};
pub use engine::{CopyHint, ShadowDma};
pub use freelist::FreeList;
pub use huge::{HugeMapper, HugeStats};
pub use pool::{
    MagazineConfig, PoolConfig, PoolStats, ShadowPool, POOL_CACHE_LOCK, POOL_FALLBACK_LOCK,
    POOL_MAGAZINE_LOCK,
};
pub(crate) use slot::MetadataArray;
