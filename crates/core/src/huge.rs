//! The hybrid huge-buffer path (§5.5).
//!
//! Copying beats an IOTLB invalidation only while buffers are small; a
//! huge buffer (above the largest pool size class) would cost more to copy
//! than to invalidate. Huge DMAs are rare though (their devices' IO rates
//! are low), so the paper proposes a hybrid: **copy only the sub-page head
//! and tail** of the OS buffer into small dedicated shadow pages, and
//! **zero-copy map the page-aligned middle**, whose pages are fully owned
//! by the buffer — preserving byte granularity. The mapping is destroyed
//! with a strict (synchronous) invalidation at unmap, so there is no
//! vulnerability window.
//!
//! The IOVA range comes from an external allocator (\[42\]) so that device
//! sees one contiguous range: `[head shadow page | middle pages | tail
//! shadow page]`.

use dma_api::{DmaBuf, DmaError, GlobalTreeIovaAllocator, IovaAllocator};
use iommu::{DeviceId, Iommu, Iova, IovaPage, Perms};
use memsim::{Pfn, PhysAddr, PhysMemory, PAGE_SIZE};
use obs::{Counter, Obs};
use simcore::sync::Mutex;
use simcore::FxHashMap;
use simcore::{CoreCtx, Phase};
use std::sync::Arc;

/// Huge-path statistics.
///
/// A thin view over the unified metric registry (`huge.*{dev}` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HugeStats {
    /// Huge mappings established.
    pub maps: u64,
    /// Huge mappings destroyed.
    pub unmaps: u64,
    /// Bytes copied through head/tail shadows.
    pub shadowed_bytes: u64,
    /// Bytes mapped zero-copy through the middle.
    pub zero_copy_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct HugeEntry {
    first_page: IovaPage,
    n_pages: u64,
    os_pa: PhysAddr,
    len: usize,
    rights: Perms,
    head_frame: Option<Pfn>,
    head_len: usize,
    tail_frame: Option<Pfn>,
    tail_len: usize,
}

/// Establishes and tears down hybrid huge-buffer mappings.
#[derive(Debug)]
pub struct HugeMapper {
    mem: Arc<PhysMemory>,
    mmu: Arc<Iommu>,
    dev: DeviceId,
    live: Mutex<FxHashMap<u64, HugeEntry>>,
    maps: Counter,
    unmaps: Counter,
    shadowed_bytes: Counter,
    zero_copy_bytes: Counter,
}

impl HugeMapper {
    /// Creates a mapper for `dev` sharing the IOMMU's telemetry handle.
    pub fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId) -> Self {
        let obs = mmu.obs().clone();
        Self::with_obs(mem, mmu, dev, obs)
    }

    /// Creates a mapper reporting into `obs` (metric keys `huge.*{dev}`).
    pub fn with_obs(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId, obs: Obs) -> Self {
        let d = Some(dev.0);
        HugeMapper {
            mem,
            mmu,
            dev,
            live: Mutex::new(FxHashMap::default()),
            maps: obs.counter("huge", "maps", d),
            unmaps: obs.counter("huge", "unmaps", d),
            shadowed_bytes: obs.counter("huge", "shadowed_bytes", d),
            zero_copy_bytes: obs.counter("huge", "zero_copy_bytes", d),
        }
    }

    /// Whether `iova` belongs to a live huge mapping.
    pub fn owns(&self, iova: Iova) -> bool {
        self.live.lock().contains_key(&iova.get())
    }

    /// Number of live huge mappings.
    pub fn live_count(&self) -> usize {
        self.live.lock().len()
    }

    /// Statistics snapshot (a view over the registry's `huge.*` counters).
    pub fn stats(&self) -> HugeStats {
        HugeStats {
            maps: self.maps.get(),
            unmaps: self.unmaps.get(),
            shadowed_bytes: self.shadowed_bytes.get(),
            zero_copy_bytes: self.zero_copy_bytes.get(),
        }
    }

    /// Maps a huge OS buffer: head/tail shadow copies + zero-copy middle.
    /// If the device reads the buffer (`rights` includes read), the head
    /// and tail contents are copied into their shadow pages now.
    ///
    /// Returns the IOVA at which the device sees the buffer's first byte.
    pub fn map(
        &self,
        ctx: &mut CoreCtx,
        iova_alloc: &GlobalTreeIovaAllocator,
        buf: DmaBuf,
        rights: Perms,
    ) -> Result<Iova, DmaError> {
        let off = buf.pa.page_offset();
        let head_len = if off == 0 {
            0
        } else {
            (PAGE_SIZE - off).min(buf.len)
        };
        let after_head = buf.len - head_len;
        let tail_len = after_head % PAGE_SIZE;
        let mid_len = after_head - tail_len;
        let mid_pages = (mid_len / PAGE_SIZE) as u64;
        let n_pages = u64::from(head_len > 0) + mid_pages + u64::from(tail_len > 0);
        assert!(n_pages > 0, "huge mapping of empty buffer");
        let domain = self.mem.topology().domain_of_core(ctx.core);
        let first_page = iova_alloc.alloc(ctx, n_pages)?;

        let mut page = first_page;
        let device_reads = rights.allows(iommu::Access::Read);

        // Head shadow page.
        let head_frame = if head_len > 0 {
            let f = self.mem.alloc_frames(domain, 1)?;
            if device_reads {
                self.mem.copy(buf.pa, f.base().add(off as u64), head_len)?;
                ctx.charge(Phase::Memcpy, ctx.cost.memcpy(head_len, false));
            }
            self.mmu.map_page(ctx, self.dev, page, f, rights)?;
            page = page.add(1);
            Some(f)
        } else {
            None
        };

        // Zero-copy middle: the OS buffer's own (fully-owned) pages.
        if mid_pages > 0 {
            let mid_pfn = buf.pa.add(head_len as u64).pfn();
            self.mmu
                .map_range(ctx, self.dev, page, mid_pfn, mid_pages, rights)?;
            page = page.add(mid_pages);
        }

        // Tail shadow page.
        let tail_frame = if tail_len > 0 {
            let f = self.mem.alloc_frames(domain, 1)?;
            if device_reads {
                let tail_src = buf.pa.add((head_len + mid_len) as u64);
                self.mem.copy(tail_src, f.base(), tail_len)?;
                ctx.charge(Phase::Memcpy, ctx.cost.memcpy(tail_len, false));
            }
            self.mmu.map_page(ctx, self.dev, page, f, rights)?;
            Some(f)
        } else {
            None
        };

        let iova = first_page.base().add(off as u64);
        self.live.lock().insert(
            iova.get(),
            HugeEntry {
                first_page,
                n_pages,
                os_pa: buf.pa,
                len: buf.len,
                rights,
                head_frame,
                head_len,
                tail_frame,
                tail_len,
            },
        );
        self.maps.inc();
        self.shadowed_bytes.add((head_len + tail_len) as u64);
        self.zero_copy_bytes.add(mid_len as u64);
        Ok(iova)
    }

    /// Unmaps a huge mapping: copies head/tail shadows back into the OS
    /// buffer if the device could write, then destroys the whole range
    /// with a strict, synchronous invalidation and releases the shadow
    /// frames and the IOVA range.
    pub fn unmap(
        &self,
        ctx: &mut CoreCtx,
        iova_alloc: &GlobalTreeIovaAllocator,
        iova: Iova,
    ) -> Result<(), DmaError> {
        let entry = self
            .live
            .lock()
            .remove(&iova.get())
            .ok_or(DmaError::BadUnmap(iova))?;
        let off = entry.os_pa.page_offset();
        if entry.rights.allows(iommu::Access::Write) {
            if let Some(f) = entry.head_frame {
                self.mem
                    .copy(f.base().add(off as u64), entry.os_pa, entry.head_len)?;
                ctx.charge(Phase::Memcpy, ctx.cost.memcpy(entry.head_len, false));
            }
            if let Some(f) = entry.tail_frame {
                let tail_dst = entry.os_pa.add((entry.len - entry.tail_len) as u64);
                self.mem.copy(f.base(), tail_dst, entry.tail_len)?;
                ctx.charge(Phase::Memcpy, ctx.cost.memcpy(entry.tail_len, false));
            }
        }
        // Strict teardown: no vulnerability window for huge mappings.
        let pages: Vec<IovaPage> = (0..entry.n_pages)
            .map(|i| entry.first_page.add(i))
            .collect();
        for &p in &pages {
            self.mmu.unmap_page_nosync(ctx, self.dev, p)?;
        }
        self.mmu.invalidate_pages_sync(ctx, self.dev, &pages);
        if let Some(f) = entry.head_frame {
            self.mem.free_frames(f, 1)?;
        }
        if let Some(f) = entry.tail_frame {
            self.mem.free_frames(f, 1)?;
        }
        iova_alloc.free(ctx, entry.first_page, entry.n_pages);
        self.unmaps.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::{CoreId, CostModel};

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        huge: HugeMapper,
        alloc: GlobalTreeIovaAllocator,
        ctx: CoreCtx,
    }

    fn rig() -> Rig {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(512)));
        let mmu = Arc::new(Iommu::new());
        Rig {
            huge: HugeMapper::new(mem.clone(), mmu.clone(), DEV),
            alloc: GlobalTreeIovaAllocator::new(),
            ctx: CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz())),
            mem,
            mmu,
        }
    }

    fn unaligned_buf(r: &Rig, len: usize, off: u64) -> DmaBuf {
        let pages = (off + len as u64).div_ceil(PAGE_SIZE as u64);
        let pfn = r.mem.alloc_frames(NumaDomain(0), pages).unwrap();
        DmaBuf::new(pfn.base().add(off), len)
    }

    #[test]
    fn device_sees_whole_buffer_contiguously() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 200_000, 1000);
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        r.mem.write(buf.pa, &data).unwrap();
        let iova = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Read).unwrap();
        let mut out = vec![0u8; 200_000];
        r.mmu.dma_read(&r.mem, DEV, iova, &mut out).unwrap();
        assert_eq!(out, data, "head+middle+tail stitch together");
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
    }

    #[test]
    fn device_writes_reach_os_buffer_after_unmap() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 150_000, 300);
        let iova = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Write).unwrap();
        let data: Vec<u8> = (0..150_000).map(|i| (i % 241) as u8).collect();
        r.mmu.dma_write(&r.mem, DEV, iova, &data).unwrap();
        // Middle bytes land directly (zero copy)...
        let mid_probe = 80_000;
        assert_eq!(
            r.mem.read_vec(buf.pa.add(mid_probe), 16).unwrap(),
            data[mid_probe as usize..mid_probe as usize + 16]
        );
        // ...head/tail bytes only after the unmap copy-back.
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
        assert_eq!(r.mem.read_vec(buf.pa, 150_000).unwrap(), data);
    }

    #[test]
    fn head_tail_are_shadowed_not_exposed() {
        // Byte granularity: the device must NOT reach data co-located on
        // the buffer's first/last pages.
        let mut r = rig();
        let buf = unaligned_buf(&r, 100_000, 2048);
        // A secret lives on the same first page, before the buffer.
        r.mem
            .write(buf.pa.page_base(), b"SECRET-AT-PAGE-START")
            .unwrap();
        let iova = r
            .huge
            .map(&mut r.ctx, &r.alloc, buf, Perms::ReadWrite)
            .unwrap();
        // The device reads "before" the buffer inside the same IOVA page:
        // it sees the shadow page, not the OS page.
        let probe = Iova::new(iova.get() - 100);
        let mut leak = vec![0u8; 20];
        r.mmu.dma_read(&r.mem, DEV, probe, &mut leak).unwrap();
        assert_ne!(&leak, b"SECRET-AT-PAGE-START");
        assert_eq!(leak, vec![0u8; 20], "fresh shadow page is zeroed");
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
    }

    #[test]
    fn unmap_is_strict() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 100_000, 512);
        let iova = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Write).unwrap();
        // Warm the IOTLB.
        r.mmu.dma_write(&r.mem, DEV, iova, b"warm").unwrap();
        let invals_before = r.mmu.invalq().stats().page_commands;
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
        assert!(r.mmu.invalq().stats().page_commands > invals_before);
        // No window: immediately blocked.
        assert!(r.mmu.dma_write(&r.mem, DEV, iova, b"late").is_err());
    }

    #[test]
    fn aligned_buffer_has_no_shadows() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 32 * PAGE_SIZE, 0);
        let frames_before = r.mem.stats().allocated_frames;
        let iova = r
            .huge
            .map(&mut r.ctx, &r.alloc, buf, Perms::ReadWrite)
            .unwrap();
        assert_eq!(
            r.mem.stats().allocated_frames,
            frames_before,
            "no shadow frames for a page-aligned, page-multiple buffer"
        );
        let s = r.huge.stats();
        assert_eq!(s.shadowed_bytes, 0);
        assert_eq!(s.zero_copy_bytes, 32 * PAGE_SIZE as u64);
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
    }

    #[test]
    fn copies_only_head_and_tail() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 1_000_000, 100);
        let iova = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Read).unwrap();
        let s = r.huge.stats();
        assert!(s.shadowed_bytes < 2 * PAGE_SIZE as u64);
        assert!(s.zero_copy_bytes > 990_000);
        // The memcpy charge is tiny compared to copying the whole buffer.
        let copied = r.ctx.breakdown.get(Phase::Memcpy);
        let full_copy = r.ctx.cost.memcpy(1_000_000, false);
        assert!(copied.get() * 50 < full_copy.get());
        r.huge.unmap(&mut r.ctx, &r.alloc, iova).unwrap();
    }

    #[test]
    fn frames_and_iovas_released_on_unmap() {
        let mut r = rig();
        let buf = unaligned_buf(&r, 100_000, 700);
        let frames_before = r.mem.stats().allocated_frames;
        let iova1 = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Write).unwrap();
        r.huge.unmap(&mut r.ctx, &r.alloc, iova1).unwrap();
        assert_eq!(r.mem.stats().allocated_frames, frames_before);
        assert_eq!(r.huge.live_count(), 0);
        // IOVA range reusable.
        let iova2 = r.huge.map(&mut r.ctx, &r.alloc, buf, Perms::Write).unwrap();
        assert_eq!(iova2, iova1);
        r.huge.unmap(&mut r.ctx, &r.alloc, iova2).unwrap();
    }

    #[test]
    fn unmap_unknown_fails() {
        let mut r = rig();
        assert!(matches!(
            r.huge.unmap(&mut r.ctx, &r.alloc, Iova::new(0x7000)),
            Err(DmaError::BadUnmap(_))
        ));
    }
}
