//! The shadow-buffer IOVA encoding (Figure 2).
//!
//! A shadow buffer's IOVA uniquely identifies its free list and its
//! metadata slot, which is what makes `find_shadow` O(1) and release
//! sticky:
//!
//! ```text
//!  47       40 38  37                                  0
//! ┌─┬─────────┬───┬─┬───────────────────────────────────┐
//! │1│ core id │r/w│C│ metadata index · class size + off │
//! └─┴─────────┴───┴─┴───────────────────────────────────┘
//! ```
//!
//! The MSB distinguishes shadow-encoded IOVAs from the low half of the
//! IOVA space, which is left to the fallback/zero-copy allocators. The
//! prototype layout (7-bit core id, 2-bit rights, 1-bit size class,
//! 37-bit index+offset) is the paper's; the field widths are configurable
//! — the paper notes more size classes can be supported "by using less
//! bits for the index and/or core id".

use iommu::{Iova, Perms};
use simcore::CoreId;

/// A decoded shadow IOVA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedIova {
    /// Owner core (the free list the buffer returns to).
    pub core: CoreId,
    /// Device access rights of the buffer's free list.
    pub rights: Perms,
    /// Size-class index.
    pub class: usize,
    /// Metadata slot index within the owner domain's array for the class.
    pub index: u64,
    /// Byte offset within the shadow buffer.
    pub offset: u64,
}

/// Encoder/decoder for shadow IOVAs with configurable field widths.
///
/// # Examples
///
/// ```
/// use iommu::Perms;
/// use shadow_core::IovaCodec;
/// use simcore::CoreId;
///
/// let codec = IovaCodec::paper_default(); // 4 KB + 64 KB classes
/// let iova = codec.encode(CoreId(3), Perms::Write, 0, 42);
/// let d = codec.decode(iova.add(100)).expect("shadow-encoded");
/// assert_eq!((d.core, d.class, d.index, d.offset), (CoreId(3), 0, 42, 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IovaCodec {
    core_bits: u32,
    class_bits: u32,
    /// Size (bytes, power of two) of each size class.
    class_sizes: Vec<usize>,
}

const IOVA_BITS: u32 = 48;
const RIGHTS_BITS: u32 = 2;

fn rights_code(p: Perms) -> u64 {
    match p {
        Perms::Read => 0,
        Perms::Write => 1,
        Perms::ReadWrite => 2,
    }
}

fn rights_from_code(c: u64) -> Option<Perms> {
    match c {
        0 => Some(Perms::Read),
        1 => Some(Perms::Write),
        2 => Some(Perms::ReadWrite),
        _ => None,
    }
}

impl IovaCodec {
    /// Creates a codec.
    ///
    /// # Panics
    ///
    /// Panics if a class size is not a power of two, classes don't fit in
    /// `class_bits`, or the fields exceed the 47 usable bits.
    pub fn new(core_bits: u32, class_bits: u32, class_sizes: Vec<usize>) -> Self {
        assert!(!class_sizes.is_empty(), "need at least one size class");
        assert!(
            class_sizes.len() <= (1usize << class_bits),
            "too many classes for {class_bits} class bits"
        );
        assert!(
            class_sizes.windows(2).all(|w| w[0] < w[1]),
            "class sizes must be strictly increasing"
        );
        for &s in &class_sizes {
            assert!(s.is_power_of_two(), "class size {s} not a power of two");
        }
        assert!(
            core_bits + RIGHTS_BITS + class_bits < IOVA_BITS - 1,
            "fields exceed IOVA width"
        );
        IovaCodec {
            core_bits,
            class_bits,
            class_sizes,
        }
    }

    /// The paper's prototype layout: 7-bit core id, 1-bit size class,
    /// classes 4 KB and 64 KB (§5.3).
    pub fn paper_default() -> Self {
        IovaCodec::new(7, 1, vec![4096, 65536])
    }

    /// Returns a codec whose core field holds at least `cores` core ids,
    /// widening `core_bits` if needed (the payload field shrinks by the
    /// same amount). A codec that is already wide enough is unchanged, so
    /// default-sized runs keep byte-identical IOVAs.
    pub fn with_min_cores(self, cores: usize) -> Self {
        let needed = (cores.max(1) as u64).next_power_of_two().trailing_zeros();
        if needed <= self.core_bits {
            return self;
        }
        Self::new(needed, self.class_bits, self.class_sizes)
    }

    /// The configured size classes.
    pub fn class_sizes(&self) -> &[usize] {
        &self.class_sizes
    }

    /// The size in bytes of class `class`.
    pub fn class_size(&self, class: usize) -> usize {
        self.class_sizes[class]
    }

    /// The smallest class that fits `len` bytes, or `None` if `len`
    /// exceeds the largest class (the huge-buffer path takes over).
    pub fn class_for(&self, len: usize) -> Option<usize> {
        self.class_sizes.iter().position(|&s| s >= len)
    }

    /// Maximum core id representable.
    pub fn max_cores(&self) -> u16 {
        1u16 << self.core_bits.min(15)
    }

    /// Bits available for `index * class_size + offset`.
    pub fn payload_bits(&self) -> u32 {
        IOVA_BITS - 1 - self.core_bits - RIGHTS_BITS - self.class_bits
    }

    /// Maximum number of metadata slots addressable for a class.
    pub fn max_index(&self, class: usize) -> u64 {
        (1u64 << self.payload_bits()) / self.class_sizes[class] as u64
    }

    /// Encodes the base IOVA (offset 0) of a shadow buffer.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn encode(&self, core: CoreId, rights: Perms, class: usize, index: u64) -> Iova {
        assert!(
            (core.0 as u64) < (1u64 << self.core_bits),
            "core id too large"
        );
        assert!(class < self.class_sizes.len(), "bad class");
        assert!(index < self.max_index(class), "metadata index out of range");
        let payload_bits = self.payload_bits();
        let class_shift = payload_bits;
        let rights_shift = class_shift + self.class_bits;
        let core_shift = rights_shift + RIGHTS_BITS;
        let v = (1u64 << (IOVA_BITS - 1))
            | ((core.0 as u64) << core_shift)
            | (rights_code(rights) << rights_shift)
            | ((class as u64) << class_shift)
            | (index * self.class_sizes[class] as u64);
        Iova::new(v)
    }

    /// Decodes a shadow IOVA; returns `None` if the MSB is clear (not a
    /// shadow-encoded address) or a field is malformed.
    pub fn decode(&self, iova: Iova) -> Option<DecodedIova> {
        let v = iova.get();
        if v >> (IOVA_BITS - 1) == 0 {
            return None;
        }
        let payload_bits = self.payload_bits();
        let class_shift = payload_bits;
        let rights_shift = class_shift + self.class_bits;
        let core_shift = rights_shift + RIGHTS_BITS;
        let mask = |bits: u32| (1u64 << bits) - 1;
        let core = (v >> core_shift) & mask(self.core_bits);
        let rights = rights_from_code((v >> rights_shift) & mask(RIGHTS_BITS))?;
        let class = ((v >> class_shift) & mask(self.class_bits)) as usize;
        if class >= self.class_sizes.len() {
            return None;
        }
        let payload = v & mask(payload_bits);
        let size = self.class_sizes[class] as u64;
        Some(DecodedIova {
            core: CoreId(core as u16),
            rights,
            class,
            index: payload / size,
            offset: payload % size,
        })
    }
}

impl Default for IovaCodec {
    fn default() -> Self {
        IovaCodec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_field_positions() {
        // Spot-check against Figure 2: 1 | core(7) | rw(2) | C(1) | 37 bits.
        let c = IovaCodec::paper_default();
        assert_eq!(c.payload_bits(), 37);
        let iova = c.encode(CoreId(0), Perms::Read, 0, 0);
        assert_eq!(iova.get(), 1u64 << 47, "only the MSB set");
        let iova = c.encode(CoreId(1), Perms::Read, 0, 0);
        assert_eq!(iova.get(), (1u64 << 47) | (1u64 << 40), "core at bit 40");
        let iova = c.encode(CoreId(0), Perms::Write, 0, 0);
        assert_eq!(iova.get(), (1u64 << 47) | (1u64 << 38), "rights at bit 38");
        let iova = c.encode(CoreId(0), Perms::Read, 1, 0);
        assert_eq!(iova.get(), (1u64 << 47) | (1u64 << 37), "class at bit 37");
        let iova = c.encode(CoreId(0), Perms::Read, 0, 1);
        assert_eq!(
            iova.get(),
            (1u64 << 47) | 4096,
            "index scaled by class size"
        );
    }

    #[test]
    fn roundtrip_all_fields() {
        let c = IovaCodec::paper_default();
        for core in [0u16, 1, 63, 127] {
            for rights in Perms::ALL {
                for class in 0..2usize {
                    for index in [0u64, 1, 1000, c.max_index(class) - 1] {
                        let iova = c.encode(CoreId(core), rights, class, index);
                        let d = c.decode(iova).expect("decodes");
                        assert_eq!(d.core, CoreId(core));
                        assert_eq!(d.rights, rights);
                        assert_eq!(d.class, class);
                        assert_eq!(d.index, index);
                        assert_eq!(d.offset, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn offsets_decode_within_buffer() {
        let c = IovaCodec::paper_default();
        let base = c.encode(CoreId(3), Perms::Write, 1, 42);
        let mid = base.add(30_000);
        let d = c.decode(mid).unwrap();
        assert_eq!(d.index, 42);
        assert_eq!(d.offset, 30_000);
        assert_eq!(d.class, 1);
    }

    #[test]
    fn msb_clear_is_not_shadow() {
        let c = IovaCodec::paper_default();
        assert!(c.decode(Iova::new(0x1234_5000)).is_none());
        assert!(c.decode(Iova::new((1u64 << 47) - 1)).is_none());
    }

    #[test]
    fn class_for_selects_smallest_fit() {
        let c = IovaCodec::paper_default();
        assert_eq!(c.class_for(1), Some(0));
        assert_eq!(c.class_for(1500), Some(0));
        assert_eq!(c.class_for(4096), Some(0));
        assert_eq!(c.class_for(4097), Some(1));
        assert_eq!(c.class_for(65536), Some(1));
        assert_eq!(c.class_for(65537), None, "huge path takes over");
    }

    #[test]
    fn max_index_matches_paper() {
        // Paper: class C can have at most 2^(37 - log2 C) buffers.
        let c = IovaCodec::paper_default();
        assert_eq!(c.max_index(0), 1u64 << 25); // 4 KB
        assert_eq!(c.max_index(1), 1u64 << 21); // 64 KB
    }

    #[test]
    fn generalized_layout_with_three_classes() {
        // The documented extension: 6-bit core, 2-bit class, sub-page class.
        let c = IovaCodec::new(6, 2, vec![1024, 4096, 65536]);
        assert_eq!(c.payload_bits(), 37);
        let iova = c.encode(CoreId(33), Perms::ReadWrite, 2, 77);
        let d = c.decode(iova.add(100)).unwrap();
        assert_eq!(d.core, CoreId(33));
        assert_eq!(d.class, 2);
        assert_eq!(d.index, 77);
        assert_eq!(d.offset, 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_class_rejected() {
        IovaCodec::new(7, 1, vec![1500]);
    }

    #[test]
    #[should_panic(expected = "too many classes")]
    fn class_count_must_fit_bits() {
        IovaCodec::new(7, 1, vec![512, 4096, 65536]);
    }

    #[test]
    #[should_panic(expected = "core id too large")]
    fn core_range_checked() {
        IovaCodec::paper_default().encode(CoreId(128), Perms::Read, 0, 0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn index_range_checked() {
        let c = IovaCodec::paper_default();
        c.encode(CoreId(0), Perms::Read, 1, c.max_index(1));
    }
}
