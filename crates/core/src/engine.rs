//! `ShadowDma` — the *copy* engine: the DMA API implemented by DMA
//! shadowing (§5.2).

// lint: allow(panic) — pool-reclaim invariants are bugs if violated, not runtime errors

use crate::{HugeMapper, PoolConfig, ShadowPool};
use dma_api::{
    CoherentBuffer, CoherentHelper, DmaBuf, DmaDirection, DmaEngine, DmaError, DmaMapping,
    GlobalTreeIovaAllocator, IovaAllocator, ProtectionProfile,
};
use iommu::{DeviceId, Iommu};
use memsim::PhysMemory;
use simcore::sync::Mutex;
use simcore::{CoreCtx, Phase};
use std::sync::Arc;

/// A driver-registered copying hint (§5.4): given the (untrusted) contents
/// of a DMAed buffer, returns how many bytes actually need copying — e.g.
/// the IP datagram length of a packet that arrived smaller than its
/// MTU-sized buffer. The return value is clamped to the mapped length.
pub type CopyHint = Arc<dyn Fn(&[u8]) -> usize + Send + Sync>;

/// The DMA-shadowing engine (*copy* in the paper's figures).
///
/// `dma_map` acquires a permanently mapped shadow buffer and copies the OS
/// buffer into it when the device will read it; `dma_unmap` copies DMAed
/// data back when the device could write, then releases the shadow buffer.
/// No IOVA is ever unmapped on the data path, so no IOTLB invalidation is
/// ever issued — protection is strict and byte-granular (§5.2 *Security*).
///
/// Buffers larger than the pool's largest size class take the hybrid
/// huge-buffer path (§5.5).
///
/// # Examples
///
/// ```
/// use dma_api::{Bus, DmaBuf, DmaDirection, DmaEngine};
/// use iommu::{DeviceId, Iommu};
/// use memsim::{NumaDomain, NumaTopology, PhysMemory};
/// use shadow_core::{PoolConfig, ShadowDma};
/// use simcore::{CoreCtx, CoreId, CostModel};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
/// let mmu = Arc::new(Iommu::new());
/// let engine = ShadowDma::new(mem.clone(), mmu.clone(), DeviceId(0), PoolConfig::default());
/// let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
///
/// // dma_map an RX buffer; the device DMAs into the shadow, and
/// // dma_unmap copies the packet out. No IOTLB invalidation, ever.
/// let skb = mem.alloc_frame(NumaDomain(0))?.base();
/// let mapping = engine.map(&mut ctx, DmaBuf::new(skb, 1500), DmaDirection::FromDevice)?;
/// let bus = Bus::Iommu { mmu: mmu.clone(), mem: mem.clone() };
/// bus.write(DeviceId(0), mapping.iova.get(), b"incoming packet")?;
/// engine.unmap(&mut ctx, mapping)?;
/// assert_eq!(mem.read_vec(skb, 15)?, b"incoming packet");
/// assert_eq!(mmu.invalq().stats().page_commands, 0);
/// # Ok(())
/// # }
/// ```
pub struct ShadowDma {
    pool: Arc<ShadowPool>,
    mem: Arc<PhysMemory>,
    dev: DeviceId,
    huge: HugeMapper,
    /// IOVA allocator for the non-pool paths (huge middles, coherent
    /// buffers) — infrequent, so the global tree's lock stays cold.
    zc_iova: GlobalTreeIovaAllocator,
    coherent: CoherentHelper,
    hint: Mutex<Option<CopyHint>>,
}

impl std::fmt::Debug for ShadowDma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowDma")
            .field("dev", &self.dev)
            .field("pool", &self.pool.stats())
            .field("has_hint", &self.hint.lock().is_some())
            .finish()
    }
}

impl ShadowDma {
    /// Creates the engine (and its shadow pool) for `dev`, sharing the
    /// IOMMU's telemetry handle so the whole stack reports into one
    /// registry.
    pub fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId, cfg: PoolConfig) -> Self {
        let obs = mmu.obs().clone();
        Self::with_obs(mem, mmu, dev, cfg, obs)
    }

    /// Creates the engine reporting into `obs`.
    pub fn with_obs(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        cfg: PoolConfig,
        obs: obs::Obs,
    ) -> Self {
        let pool = Arc::new(ShadowPool::with_obs(
            mem.clone(),
            mmu.clone(),
            dev,
            cfg,
            obs.clone(),
        ));
        ShadowDma {
            huge: HugeMapper::with_obs(mem.clone(), mmu.clone(), dev, obs),
            coherent: CoherentHelper::new(mem.clone(), mmu, dev),
            zc_iova: GlobalTreeIovaAllocator::new(),
            pool,
            mem,
            dev,
            hint: Mutex::new(None),
        }
    }

    /// The telemetry handle this engine reports into.
    pub fn obs(&self) -> &obs::Obs {
        self.pool.obs()
    }

    /// The shadow buffer pool.
    pub fn pool(&self) -> &Arc<ShadowPool> {
        &self.pool
    }

    /// The huge-buffer mapper.
    pub fn huge(&self) -> &HugeMapper {
        &self.huge
    }

    /// Registers a copying hint (§5.4). The hint's input is untrusted
    /// device-written data; it must be fast and defensive.
    pub fn set_copy_hint(&self, hint: CopyHint) {
        *self.hint.lock() = Some(hint);
    }

    /// Removes the copying hint.
    pub fn clear_copy_hint(&self) {
        *self.hint.lock() = None;
    }

    /// The number of bytes to copy back for a device-written buffer,
    /// consulting the hint if registered.
    fn copy_back_len(&self, shadow_bytes: &[u8], mapped_len: usize) -> usize {
        match &*self.hint.lock() {
            Some(h) => h(shadow_bytes).min(mapped_len),
            None => mapped_len,
        }
    }

    fn charge_copy(&self, ctx: &mut CoreCtx, len: usize, cross_numa: bool) {
        ctx.charge(Phase::Memcpy, ctx.cost.memcpy(len, cross_numa));
        let pollution = ctx.cost.cache_pollution(len);
        if pollution > simcore::Cycles::ZERO {
            // Victim working-set refetches surface later, outside the
            // copy itself — the paper attributes them to "other".
            ctx.charge(Phase::Other, pollution);
        }
    }

    fn is_cross_numa(&self, a: memsim::PhysAddr, b: memsim::PhysAddr) -> bool {
        let topo = self.mem.topology();
        topo.domain_of_pfn(a.pfn()) != topo.domain_of_pfn(b.pfn())
    }
}

impl DmaEngine for ShadowDma {
    fn name(&self) -> &'static str {
        "copy"
    }

    fn device(&self) -> DeviceId {
        self.dev
    }

    fn profile(&self) -> ProtectionProfile {
        ProtectionProfile {
            name: "copy",
            uses_iommu: true,
            sub_page: true,
            no_vulnerability_window: true,
        }
    }

    fn map(
        &self,
        ctx: &mut CoreCtx,
        buf: DmaBuf,
        dir: DmaDirection,
    ) -> Result<DmaMapping, DmaError> {
        let largest = *self
            .pool
            .codec()
            .class_sizes()
            .last()
            .expect("pool has classes");
        if buf.len > largest {
            let iova = self.huge.map(ctx, &self.zc_iova, buf, dir.perms())?;
            return Ok(DmaMapping {
                iova,
                len: buf.len,
                dir,
                os_pa: buf.pa,
            });
        }
        let iova = obs::profile::scope(ctx, "pool_acquire", |ctx| {
            self.pool.acquire_shadow(ctx, buf, dir.perms())
        })?;
        if dir.device_reads() {
            let sref = self.pool.find_shadow(iova).expect("just acquired");
            obs::profile::scope(ctx, "copy_in", |ctx| {
                self.mem.copy(buf.pa, sref.shadow_pa, buf.len)?;
                self.charge_copy(ctx, buf.len, self.is_cross_numa(buf.pa, sref.shadow_pa));
                Ok::<(), DmaError>(())
            })?;
        }
        Ok(DmaMapping {
            iova,
            len: buf.len,
            dir,
            os_pa: buf.pa,
        })
    }

    fn unmap(&self, ctx: &mut CoreCtx, mapping: DmaMapping) -> Result<(), DmaError> {
        if self.huge.owns(mapping.iova) {
            return self.huge.unmap(ctx, &self.zc_iova, mapping.iova);
        }
        let sref = self
            .pool
            .find_shadow(mapping.iova)
            .ok_or(DmaError::BadUnmap(mapping.iova))?;
        debug_assert_eq!(sref.os_pa, mapping.os_pa, "find_shadow is consistent");
        if mapping.dir.device_writes() {
            // Consult the copying hint (if any) on the DMAed bytes; without
            // a hint the whole mapped length is copied back.
            let n = if self.hint.lock().is_some() {
                let shadow_bytes = self.mem.read_vec(sref.shadow_pa, mapping.len)?;
                self.copy_back_len(&shadow_bytes, mapping.len)
            } else {
                mapping.len
            };
            obs::profile::scope(ctx, "copy_back", |ctx| {
                self.mem.copy(sref.shadow_pa, sref.os_pa, n)?;
                self.charge_copy(ctx, n, self.is_cross_numa(sref.shadow_pa, sref.os_pa));
                Ok::<(), DmaError>(())
            })?;
        }
        obs::profile::scope(ctx, "pool_release", |ctx| {
            self.pool.release_shadow(ctx, mapping.iova)
        })
    }

    fn alloc_coherent(&self, ctx: &mut CoreCtx, len: usize) -> Result<CoherentBuffer, DmaError> {
        self.coherent
            .alloc(ctx, len, |ctx, pages, _| self.zc_iova.alloc(ctx, pages))
    }

    fn free_coherent(&self, ctx: &mut CoreCtx, buf: CoherentBuffer) -> Result<(), DmaError> {
        self.coherent.free(ctx, buf, |ctx, first, pages| {
            self.zc_iova.free(ctx, first, pages)
        })
    }

    fn flush_deferred(&self, ctx: &mut CoreCtx) {
        // The copy engine defers no invalidations, but when per-core
        // magazines are enabled the pool parks free slots per core; the
        // teardown/timer path returns them to the depot so the pool's
        // reclaim sees every slot.
        self.pool.drain_magazines(ctx);
    }

    fn iova_lock_stats(&self) -> Option<(&'static str, simcore::LockStats)> {
        self.zc_iova.lock_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_api::Bus;
    use iommu::Perms;
    use memsim::{NumaDomain, NumaTopology, PAGE_SIZE};
    use simcore::{CoreId, CostModel, Cycles};

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        bus: Bus,
        eng: ShadowDma,
        ctx: CoreCtx,
    }

    fn rig() -> Rig {
        let mem = Arc::new(PhysMemory::new(NumaTopology::new(4, 2, 4096)));
        let mmu = Arc::new(Iommu::new());
        Rig {
            eng: ShadowDma::new(mem.clone(), mmu.clone(), DEV, PoolConfig::default()),
            bus: Bus::Iommu {
                mmu: mmu.clone(),
                mem: mem.clone(),
            },
            ctx: CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz())),
            mem,
            mmu,
        }
    }

    fn os_buf(r: &Rig, len: usize) -> DmaBuf {
        let pages = (len as u64).div_ceil(PAGE_SIZE as u64);
        let pfn = r.mem.alloc_frames(NumaDomain(0), pages).unwrap();
        DmaBuf::new(pfn.base(), len)
    }

    #[test]
    fn rx_roundtrip_no_invalidation_ever() {
        let mut r = rig();
        let buf = os_buf(&r, 1500);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        // The device writes a packet into the SHADOW buffer.
        let pkt = vec![0x77u8; 1500];
        r.bus.write(DEV, m.iova.get(), &pkt).unwrap();
        // Until unmap, the OS buffer is untouched (the device never saw it).
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), vec![0u8; 1500]);
        r.eng.unmap(&mut r.ctx, m).unwrap();
        // The unmap copy delivered the data.
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), pkt);
        // And the whole exchange issued ZERO IOTLB invalidations.
        assert_eq!(r.mmu.invalq().stats().page_commands, 0);
        assert_eq!(r.mmu.invalq().stats().flush_commands, 0);
        assert_eq!(r.ctx.breakdown.get(Phase::InvalidateIotlb), Cycles::ZERO);
    }

    #[test]
    fn tx_copies_at_map_time() {
        let mut r = rig();
        let buf = os_buf(&r, 1000);
        let payload = vec![0x42u8; 1000];
        r.mem.write(buf.pa, &payload).unwrap();
        let m = r.eng.map(&mut r.ctx, buf, DmaDirection::ToDevice).unwrap();
        // The device reads the packet from the shadow.
        let mut out = vec![0u8; 1000];
        r.bus.read(DEV, m.iova.get(), &mut out).unwrap();
        assert_eq!(out, payload);
        // Writes by the device are blocked (rights = Read).
        assert!(r.bus.write(DEV, m.iova.get(), b"x").is_err());
        r.eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn device_never_reaches_os_memory() {
        // The essence of byte-granularity protection: even while a mapping
        // is live, the OS buffer's own physical page is invisible to the
        // device — only the shadow is mapped.
        let mut r = rig();
        let buf = os_buf(&r, 512);
        r.mem.write(buf.pa.add(512), b"neighbor secret").unwrap();
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::Bidirectional)
            .unwrap();
        // Probing the OS buffer's physical address as an IOVA faults.
        assert!(r.bus.read(DEV, buf.pa.get(), &mut [0u8; 16]).is_err());
        // Probing beyond the mapped shadow's own bytes stays inside shadow
        // memory (same rights), never in OS memory; the secret at
        // buf.pa+512 is unreachable because no IOVA maps its page.
        let sref = r.eng.pool().find_shadow(m.iova).unwrap();
        assert_ne!(sref.shadow_pa.pfn(), buf.pa.pfn());
        r.eng.unmap(&mut r.ctx, m).unwrap();
    }

    #[test]
    fn stale_mapping_after_unmap_reads_only_shadow() {
        // After unmap the shadow stays mapped (by design!) but it no longer
        // holds OS-relevant data; a malicious late write mutates only the
        // recycled shadow, never the returned OS buffer (§5.2 Security).
        let mut r = rig();
        let buf = os_buf(&r, 1500);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        r.bus.write(DEV, m.iova.get(), &vec![1u8; 1500]).unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        let os_after = r.mem.read_vec(buf.pa, 1500).unwrap();
        // Late device write to the (still-mapped) shadow succeeds...
        r.bus.write(DEV, m.iova.get(), &vec![9u8; 1500]).unwrap();
        // ...but the OS buffer is unaffected.
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), os_after);
    }

    #[test]
    fn copy_costs_match_calibration() {
        let mut r = rig();
        let buf = os_buf(&r, 1500);
        // Warm the pool.
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        r.ctx.reset_stats();
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        // RX 1500 B: one copy ≈ 0.11 µs, pool mgmt ≈ 0.02 µs (Fig. 5a).
        let memcpy_us = r
            .ctx
            .breakdown
            .get(Phase::Memcpy)
            .to_micros(r.ctx.cost.clock_ghz);
        assert!((memcpy_us - 0.11).abs() < 0.03, "{memcpy_us}");
        let mgmt_us = r
            .ctx
            .breakdown
            .get(Phase::CopyMgmt)
            .to_micros(r.ctx.cost.clock_ghz);
        assert!((mgmt_us - 0.02).abs() < 0.01, "{mgmt_us}");
        assert_eq!(r.ctx.breakdown.get(Phase::InvalidateIotlb), Cycles::ZERO);
    }

    #[test]
    fn copy_hint_limits_copy_back() {
        let mut r = rig();
        // Hint: the "wire length" lives in the first two bytes.
        r.eng.set_copy_hint(Arc::new(|data: &[u8]| {
            if data.len() < 2 {
                return data.len();
            }
            u16::from_be_bytes([data[0], data[1]]) as usize
        }));
        let buf = os_buf(&r, 1500);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        // The device delivers a 300-byte packet into the MTU-sized buffer.
        let mut pkt = vec![0xaau8; 300];
        pkt[0] = 0x01; // length 0x012c = 300
        pkt[1] = 0x2c;
        r.bus.write(DEV, m.iova.get(), &pkt).unwrap();
        r.ctx.reset_stats();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        // Only ~300 bytes were copied, not 1500.
        let copied = r.ctx.breakdown.get(Phase::Memcpy);
        assert!(copied <= r.ctx.cost.memcpy(300, true));
        assert!(copied >= r.ctx.cost.memcpy(250, false));
        // And the OS buffer got the packet.
        assert_eq!(r.mem.read_vec(buf.pa, 300).unwrap(), pkt);
        // A hint returning nonsense is clamped to the mapped length.
        r.eng.set_copy_hint(Arc::new(|_| usize::MAX));
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        r.bus.write(DEV, m.iova.get(), &vec![5u8; 1500]).unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(r.mem.read_vec(buf.pa, 1500).unwrap(), vec![5u8; 1500]);
    }

    #[test]
    fn huge_buffers_route_to_hybrid_path() {
        let mut r = rig();
        let buf = os_buf(&r, 300_000);
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::FromDevice)
            .unwrap();
        assert_eq!(r.eng.huge().live_count(), 1);
        let data: Vec<u8> = (0..300_000).map(|i| (i % 239) as u8).collect();
        r.bus.write(DEV, m.iova.get(), &data).unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        assert_eq!(r.mem.read_vec(buf.pa, 300_000).unwrap(), data);
        assert_eq!(r.eng.huge().live_count(), 0);
        // Huge unmap IS strict (it invalidates), unlike the pool path.
        assert!(r.mmu.invalq().stats().page_commands > 0);
    }

    #[test]
    fn sg_list_round_trip() {
        let mut r = rig();
        let bufs: Vec<DmaBuf> = (0..4).map(|_| os_buf(&r, 2048)).collect();
        for (i, b) in bufs.iter().enumerate() {
            r.mem.write(b.pa, &vec![i as u8 + 1; 2048]).unwrap();
        }
        let ms = r
            .eng
            .map_sg(&mut r.ctx, &bufs, DmaDirection::ToDevice)
            .unwrap();
        for (i, m) in ms.iter().enumerate() {
            let mut out = vec![0u8; 2048];
            r.bus.read(DEV, m.iova.get(), &mut out).unwrap();
            assert_eq!(out, vec![i as u8 + 1; 2048]);
        }
        r.eng.unmap_sg(&mut r.ctx, ms).unwrap();
    }

    #[test]
    fn coherent_allocation_works_and_is_strict() {
        let mut r = rig();
        let c = r.eng.alloc_coherent(&mut r.ctx, 4096 * 3).unwrap();
        r.bus.write(DEV, c.iova.get(), b"descriptor ring").unwrap();
        assert_eq!(r.mem.read_vec(c.pa, 15).unwrap(), b"descriptor ring");
        r.eng.free_coherent(&mut r.ctx, c).unwrap();
        assert!(r.bus.write(DEV, c.iova.get(), b"x").is_err());
    }

    #[test]
    fn bidirectional_copies_both_ways() {
        let mut r = rig();
        let buf = os_buf(&r, 4096);
        r.mem.write(buf.pa, &vec![0x10u8; 4096]).unwrap();
        let m = r
            .eng
            .map(&mut r.ctx, buf, DmaDirection::Bidirectional)
            .unwrap();
        // Device sees the OS data...
        let mut out = vec![0u8; 4096];
        r.bus.read(DEV, m.iova.get(), &mut out).unwrap();
        assert_eq!(out, vec![0x10u8; 4096]);
        // ...modifies it...
        r.bus.write(DEV, m.iova.get(), &vec![0x20u8; 4096]).unwrap();
        r.eng.unmap(&mut r.ctx, m).unwrap();
        // ...and the OS sees the modification.
        assert_eq!(r.mem.read_vec(buf.pa, 4096).unwrap(), vec![0x20u8; 4096]);
    }

    #[test]
    fn profile_is_fully_protected() {
        let r = rig();
        let p = r.eng.profile();
        assert!(p.uses_iommu && p.sub_page && p.no_vulnerability_window);
        assert_eq!(r.eng.name(), "copy");
    }

    #[test]
    fn unmap_unknown_fails() {
        let mut r = rig();
        let bogus = DmaMapping {
            iova: iommu::Iova::new(0x123_0000),
            len: 64,
            dir: DmaDirection::ToDevice,
            os_pa: memsim::PhysAddr(0),
        };
        assert!(matches!(
            r.eng.unmap(&mut r.ctx, bogus),
            Err(DmaError::BadUnmap(_))
        ));
        let _ = Perms::Read;
    }
}
