//! The shadow DMA buffer pool (§5.3, Table 2).

// lint: allow(panic) — slot bookkeeping invariants are bugs if violated, not runtime errors

use crate::{FreeList, IovaCodec, MetadataArray};
use dma_api::{DmaBuf, DmaError};
use iommu::{DeviceId, Iommu, Iova, IovaPage, Perms};
use memsim::{PhysAddr, PhysMemory, PAGE_SIZE};
use obs::{Counter, EventKind, Gauge, Obs};
use simcore::sync::Mutex;
use simcore::FxHashMap;
use simcore::{CoreCtx, CoreId, Phase};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The IOVA encoding (field widths and size classes).
    pub codec: IovaCodec,
    /// Practical bound on metadata slots per (NUMA domain, class) —
    /// the paper uses 16 K ("a more practical bound", §6 *Memory
    /// consumption*). Beyond it the fallback path takes over.
    pub max_buffers_per_class: u64,
    /// Opt-in per-core slot magazines in front of the free lists
    /// (`None` keeps the original depot-only behavior, bit for bit).
    pub magazines: Option<MagazineConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            codec: IovaCodec::paper_default(),
            max_buffers_per_class: 16 * 1024,
            magazines: None,
        }
    }
}

/// Per-core slot-magazine configuration (slab-magazine / iova-rcache
/// style): each (core, class, rights) keeps a small stack of free slot
/// indices so the steady-state acquire/release cycle never touches the
/// shared free list. Misses refill in batches from the depot; owner-core
/// releases land in the magazine until `capacity`, then overflow to the
/// depot. Cross-core releases always go straight to the owner's depot
/// list (the magazine stays single-core).
#[derive(Debug, Clone, Copy)]
pub struct MagazineConfig {
    /// Slots cached per (core, class, rights) before overflowing.
    pub capacity: usize,
    /// Slots pulled from the depot on a magazine miss (1 is used, the
    /// rest are cached).
    pub refill: usize,
}

impl Default for MagazineConfig {
    fn default() -> Self {
        MagazineConfig {
            capacity: 64,
            refill: 16,
        }
    }
}

/// Pool statistics.
///
/// A thin view over the unified metric registry (`pool.*{dev}` keys):
/// [`ShadowPool::stats`] reads the registry counters/gauges, never a
/// private side-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Successful `acquire_shadow` calls.
    pub acquires: u64,
    /// `release_shadow` calls.
    pub releases: u64,
    /// Slow-path allocations of fresh shadow buffers.
    pub grows: u64,
    /// Acquires served by the fallback (hash-table) path.
    pub fallback_acquires: u64,
    /// Shadow buffers currently acquired by live mappings.
    pub in_flight: u64,
    /// High-water mark of `in_flight`.
    pub peak_in_flight: u64,
    /// Bytes of physical memory currently backing shadow buffers.
    pub shadow_bytes: u64,
    /// High-water mark of `shadow_bytes`.
    pub peak_shadow_bytes: u64,
    /// Buffers retired by memory-pressure reclaim.
    pub reclaimed: u64,
}

/// What `find_shadow` returns: everything the DMA layer needs to copy
/// to/from the shadow buffer and to hand the OS buffer back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowRef {
    /// The associated OS buffer.
    pub os_pa: PhysAddr,
    /// The associated OS buffer's length.
    pub os_len: usize,
    /// Physical base of the shadow buffer.
    pub shadow_pa: PhysAddr,
    /// Shadow buffer capacity in bytes.
    pub size: usize,
    /// Device access rights to the shadow buffer.
    pub rights: Perms,
}

#[derive(Debug, Clone, Copy)]
struct FallbackEntry {
    shadow_pa: PhysAddr,
    pages: u64,
    os_pa: PhysAddr,
    os_len: usize,
    rights: Perms,
    size: usize,
}

/// First IOVA page of the fallback region: the upper quarter of the
/// MSB-clear half, disjoint from the `dma-api` allocators' range.
const FALLBACK_PAGE_BASE: u64 = 1 << 34;

/// Lock name reported in lockset events for the sub-page fragment caches.
pub const POOL_CACHE_LOCK: &str = "pool-cache";
/// Lock name reported in lockset events for the fallback table.
pub const POOL_FALLBACK_LOCK: &str = "pool-fallback";
/// Lock name reported in lockset events for the per-core slot magazines.
pub const POOL_MAGAZINE_LOCK: &str = "pool-magazine";

fn rights_idx(p: Perms) -> usize {
    match p {
        Perms::Read => 0,
        Perms::Write => 1,
        Perms::ReadWrite => 2,
    }
}

/// The per-device shadow buffer pool.
///
/// A fast, scalable, multi-threaded segregated free-list allocator of
/// permanently IOMMU-mapped buffers. See the crate docs for the design;
/// the API is the paper's Table 2 (`acquire_shadow` / `find_shadow` /
/// `release_shadow`).
///
/// Thread safety: the pool is `Sync`. `acquire_shadow` must be called with
/// a `ctx` whose core id the caller "owns" (one thread per core id at a
/// time — the single-consumer contract of §5.3); `release_shadow` and
/// `find_shadow` may be called from any core.
///
/// # Examples
///
/// ```
/// use dma_api::DmaBuf;
/// use iommu::{DeviceId, Iommu, Perms};
/// use memsim::{NumaDomain, NumaTopology, PhysMemory};
/// use shadow_core::{PoolConfig, ShadowPool};
/// use simcore::{CoreCtx, CoreId, CostModel};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
/// let mmu = Arc::new(Iommu::new());
/// let pool = ShadowPool::new(mem.clone(), mmu, DeviceId(0), PoolConfig::default());
/// let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
///
/// let os_buf = DmaBuf::new(mem.alloc_frame(NumaDomain(0))?.base(), 1500);
/// let iova = pool.acquire_shadow(&mut ctx, os_buf, Perms::Write)?;
/// let sref = pool.find_shadow(iova).expect("O(1) reverse lookup");
/// assert_eq!(sref.os_pa, os_buf.pa);
/// pool.release_shadow(&mut ctx, iova)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShadowPool {
    mem: Arc<PhysMemory>,
    mmu: Arc<Iommu>,
    dev: DeviceId,
    codec: IovaCodec,
    cores: u16,
    nclasses: usize,
    /// `[domain * nclasses + class]`
    arrays: Vec<MetadataArray>,
    /// `[(core * nclasses + class) * 3 + rights]`
    lists: Vec<FreeList>,
    /// Private caches of page fragments, same indexing as `lists`.
    /// Populated only for sub-page size classes (§5.3: the remainder of a
    /// split page goes to a private cache, not the free list, to avoid
    /// synchronizing with releases).
    caches: Vec<Mutex<Vec<u64>>>,
    /// Per-core slot magazines, same indexing as `lists`; used only when
    /// `mag` is `Some`.
    magazines: Vec<Mutex<Vec<u64>>>,
    mag: Option<MagazineConfig>,
    fallback: Mutex<FxHashMap<u64, FallbackEntry>>,
    fallback_pages: Mutex<FallbackIovaSpace>,
    // Telemetry: registry-backed handles (single source of truth).
    obs: Obs,
    acquires: Counter,
    releases: Counter,
    grows: Counter,
    fallback_acquires: Counter,
    in_flight: Gauge,
    peak_in_flight: Gauge,
    shadow_bytes: Gauge,
    peak_shadow_bytes: Gauge,
    reclaimed: Counter,
    magazine_hits: Counter,
    magazine_refills: Counter,
    magazine_drained: Counter,
}

/// Bump-with-reuse IOVA page allocator for the fallback region, standing in
/// for the "external scalable IOVA allocator \[42\]" (its *cost* is charged
/// as the magazine allocator's by the acquire path).
#[derive(Debug)]
struct FallbackIovaSpace {
    next: u64,
    free: FxHashMap<u64, Vec<u64>>, // run length -> starts
}

impl FallbackIovaSpace {
    fn alloc(&mut self, n: u64) -> IovaPage {
        if let Some(start) = self.free.get_mut(&n).and_then(|v| v.pop()) {
            return IovaPage(start);
        }
        let start = self.next;
        self.next += n;
        assert!(self.next < 1 << 35, "fallback IOVA region exhausted");
        IovaPage(start)
    }

    fn free(&mut self, page: IovaPage, n: u64) {
        self.free.entry(n).or_default().push(page.get());
    }
}

impl ShadowPool {
    /// Creates a pool for device `dev` with a private telemetry handle.
    pub fn new(mem: Arc<PhysMemory>, mmu: Arc<Iommu>, dev: DeviceId, cfg: PoolConfig) -> Self {
        Self::with_obs(mem, mmu, dev, cfg, Obs::isolated())
    }

    /// Creates a pool reporting into `obs` (metric keys `pool.*{dev}`).
    pub fn with_obs(
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        dev: DeviceId,
        cfg: PoolConfig,
        obs: Obs,
    ) -> Self {
        let topo = mem.topology().clone();
        let cores = topo.cores();
        assert!(
            cores <= cfg.codec.max_cores(),
            "topology has more cores than the IOVA encoding can name"
        );
        let nclasses = cfg.codec.class_sizes().len();
        let cap_per = |class: usize| cfg.max_buffers_per_class.min(cfg.codec.max_index(class));
        let arrays = (0..topo.domains() as usize * nclasses)
            .map(|i| MetadataArray::new(cap_per(i % nclasses)))
            .collect();
        let nlists = cores as usize * nclasses * 3;
        let d = Some(dev.0);
        // Magazine metrics are registered only when magazines are on, so
        // the default configuration's registry stays byte-identical.
        let (magazine_hits, magazine_refills, magazine_drained) = match cfg.magazines {
            Some(_) => (
                obs.counter("pool", "magazine_hits", d),
                obs.counter("pool", "magazine_refills", d),
                obs.counter("pool", "magazine_drained", d),
            ),
            None => Default::default(),
        };
        ShadowPool {
            mem,
            mmu,
            dev,
            codec: cfg.codec,
            cores,
            nclasses,
            arrays,
            lists: (0..nlists).map(|_| FreeList::new()).collect(),
            caches: (0..nlists).map(|_| Mutex::new(Vec::new())).collect(),
            magazines: (0..nlists).map(|_| Mutex::new(Vec::new())).collect(),
            mag: cfg.magazines,
            fallback: Mutex::new(FxHashMap::default()),
            fallback_pages: Mutex::new(FallbackIovaSpace {
                next: FALLBACK_PAGE_BASE,
                free: FxHashMap::default(),
            }),
            acquires: obs.counter("pool", "acquires", d),
            releases: obs.counter("pool", "releases", d),
            grows: obs.counter("pool", "grows", d),
            fallback_acquires: obs.counter("pool", "fallback_acquires", d),
            in_flight: obs.gauge("pool", "in_flight", d),
            peak_in_flight: obs.gauge("pool", "peak_in_flight", d),
            shadow_bytes: obs.gauge("pool", "shadow_bytes", d),
            peak_shadow_bytes: obs.gauge("pool", "peak_shadow_bytes", d),
            reclaimed: obs.counter("pool", "reclaimed", d),
            magazine_hits,
            magazine_refills,
            magazine_drained,
            obs,
        }
    }

    /// The telemetry handle this pool reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Emits a detail-gated lockset triple — acquire, shared access,
    /// release — around a mutex-guarded pool access. The host mutexes are
    /// instantaneous in virtual time, so the triple brackets the access
    /// exactly; `find_shadow` (which has no `CoreCtx`) is deliberately
    /// uninstrumented.
    /// `var` is a closure so the common detail-off path never pays for
    /// building the label string.
    fn lockset_guarded(&self, ctx: &CoreCtx, lock: &'static str, var: impl FnOnce() -> String) {
        if !self.obs.detail_enabled() {
            return;
        }
        let var = var();
        let (at, core) = (ctx.now(), ctx.core.0);
        self.obs
            .trace(at, core, None, EventKind::LockAcquire { lock: lock.into() });
        self.obs.trace(
            at,
            core,
            None,
            EventKind::SharedAccess {
                var: var.into(),
                write: true,
            },
        );
        self.obs
            .trace(at, core, None, EventKind::LockRelease { lock: lock.into() });
    }

    /// The IOVA codec in use.
    pub fn codec(&self) -> &IovaCodec {
        &self.codec
    }

    /// The device this pool shadows for.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    fn list_idx(&self, core: CoreId, class: usize, rights: Perms) -> usize {
        let core = core.index() % self.cores as usize;
        (core * self.nclasses + class) * 3 + rights_idx(rights)
    }

    fn array_idx(&self, core: CoreId, class: usize) -> usize {
        let domain = self.mem.topology().domain_of_core(core);
        domain.index() * self.nclasses + class
    }

    /// Acquires a shadow buffer of at least `os_buf.len` bytes with the
    /// given device access rights, associates it with `os_buf`, and
    /// returns its IOVA (Table 2 `acquire_shadow`).
    ///
    /// The buffer comes from the calling core's free list (lockless), its
    /// private fragment cache, or — on miss — a freshly allocated,
    /// permanently mapped buffer on the core's NUMA domain. If the
    /// buffer's size exceeds the largest size class, or the metadata array
    /// is exhausted, the fallback hash-table path serves the request.
    pub fn acquire_shadow(
        &self,
        ctx: &mut CoreCtx,
        os_buf: DmaBuf,
        rights: Perms,
    ) -> Result<Iova, DmaError> {
        ctx.charge(Phase::CopyMgmt, ctx.cost.shadow_pool_op);
        let iova = match self.codec.class_for(os_buf.len) {
            Some(class) => self.acquire_classed(ctx, os_buf, rights, class)?,
            None => self.acquire_fallback(ctx, os_buf, rights)?,
        };
        self.acquires.inc();
        self.peak_in_flight.set_max(self.in_flight.add(1));
        Ok(iova)
    }

    fn acquire_classed(
        &self,
        ctx: &mut CoreCtx,
        os_buf: DmaBuf,
        rights: Perms,
        class: usize,
    ) -> Result<Iova, DmaError> {
        let core = CoreId((ctx.core.0) % self.cores);
        let li = self.list_idx(core, class, rights);
        let ai = self.array_idx(core, class);
        let array = &self.arrays[ai];
        let index = if let Some(i) = self.magazine_pop(ctx, li) {
            i
        } else {
            // NOTE: bind the cache pop to a statement so its lock guard
            // drops here — `grow` re-locks the same cache when splitting a
            // page.
            self.lockset_guarded(ctx, POOL_CACHE_LOCK, || format!("pool.cache[{li}]"));
            let cached = self.caches[li].lock().pop();
            if let Some(i) = cached {
                i
            } else if let Some(i) = self.pop_free(ctx, li, array) {
                i
            } else {
                match self.grow(ctx, core, class, rights, li, ai)? {
                    Some(i) => i,
                    // Metadata exhausted: fall back.
                    None => return self.acquire_fallback(ctx, os_buf, rights),
                }
            }
        };
        let slot = array.slot(index);
        slot.associate(os_buf.pa, os_buf.len);
        Ok(self.codec.encode(core, rights, class, index))
    }

    /// Pops a slot from the calling core's magazine (`None` with
    /// magazines disabled, or on a miss).
    fn magazine_pop(&self, ctx: &mut CoreCtx, li: usize) -> Option<u64> {
        self.mag?;
        self.lockset_guarded(ctx, POOL_MAGAZINE_LOCK, || format!("pool.magazine[{li}]"));
        let i = self.magazines[li].lock().pop();
        if i.is_some() {
            self.magazine_hits.inc();
        }
        i
    }

    /// Pops a slot from the depot free list. With magazines enabled this
    /// pulls a batch: one slot is returned, the rest refill the magazine,
    /// so the next `refill - 1` acquires never touch the shared list.
    fn pop_free(&self, ctx: &mut CoreCtx, li: usize, array: &MetadataArray) -> Option<u64> {
        let Some(mc) = self.mag else {
            return self.lists[li].pop(array);
        };
        let got = self.lists[li].drain(array, mc.refill.max(1));
        let (&first, rest) = got.split_first()?;
        if !rest.is_empty() {
            self.magazine_refills.inc();
            self.lockset_guarded(ctx, POOL_MAGAZINE_LOCK, || format!("pool.magazine[{li}]"));
            self.magazines[li].lock().extend_from_slice(rest);
        }
        Some(first)
    }

    /// Pushes a released slot into the calling core's magazine. Returns
    /// `false` (caller sends the slot to the depot) when magazines are
    /// off or the magazine is at capacity.
    fn magazine_push(&self, ctx: &mut CoreCtx, li: usize, index: u64) -> bool {
        let Some(mc) = self.mag else {
            return false;
        };
        self.lockset_guarded(ctx, POOL_MAGAZINE_LOCK, || format!("pool.magazine[{li}]"));
        let mut mag = self.magazines[li].lock();
        if mag.len() >= mc.capacity.max(1) {
            return false;
        }
        mag.push(index);
        true
    }

    /// Returns every slot cached in one magazine to its depot list;
    /// returns how many moved.
    fn drain_magazine_into_list(
        &self,
        ctx: &mut CoreCtx,
        li: usize,
        array: &MetadataArray,
    ) -> usize {
        if self.mag.is_none() || self.magazines[li].lock().is_empty() {
            return 0;
        }
        self.lockset_guarded(ctx, POOL_MAGAZINE_LOCK, || format!("pool.magazine[{li}]"));
        let slots = std::mem::take(&mut *self.magazines[li].lock());
        for &index in &slots {
            self.lists[li].push(array, index);
        }
        self.magazine_drained.add(slots.len() as u64);
        slots.len()
    }

    /// Drains every per-core magazine back into the depot free lists (the
    /// teardown path, also run before reclaim scans a core). After this no
    /// slot is checked out into a magazine, so teardown accounting and
    /// memory-pressure reclaim see the whole pool. Returns the number of
    /// slots returned.
    pub fn drain_magazines(&self, ctx: &mut CoreCtx) -> usize {
        if self.mag.is_none() {
            return 0;
        }
        let mut drained = 0;
        for core in 0..self.cores {
            for class in 0..self.nclasses {
                let ai = self.array_idx(CoreId(core), class);
                let array = &self.arrays[ai];
                for rights in Perms::ALL {
                    let li = self.list_idx(CoreId(core), class, rights);
                    drained += self.drain_magazine_into_list(ctx, li, array);
                }
            }
        }
        drained
    }

    /// Slots currently cached across all magazines (observability).
    pub fn magazine_len(&self) -> usize {
        self.magazines.iter().map(|m| m.lock().len()).sum()
    }

    /// Allocates and permanently maps fresh shadow buffer(s); returns
    /// `None` if the metadata array is exhausted.
    fn grow(
        &self,
        ctx: &mut CoreCtx,
        core: CoreId,
        class: usize,
        rights: Perms,
        li: usize,
        ai: usize,
    ) -> Result<Option<u64>, DmaError> {
        obs::profile::scope(ctx, "pool_grow", |ctx| {
            self.grow_inner(ctx, core, class, rights, li, ai)
        })
    }

    fn grow_inner(
        &self,
        ctx: &mut CoreCtx,
        core: CoreId,
        class: usize,
        rights: Perms,
        li: usize,
        ai: usize,
    ) -> Result<Option<u64>, DmaError> {
        let size = self.codec.class_size(class);
        let domain = self.mem.topology().domain_of_core(core);
        let array = &self.arrays[ai];
        ctx.charge(Phase::CopyMgmt, ctx.cost.shadow_pool_grow);
        self.grows.inc();
        if size >= PAGE_SIZE {
            let Some(index) = array.reserve() else {
                return Ok(None);
            };
            let pages = (size / PAGE_SIZE) as u64;
            let pfn = self.mem.alloc_frames(domain, pages)?;
            array
                .slot(index)
                .shadow_pa
                .store(pfn.base().get(), Ordering::Release);
            let iova_page = self.codec.encode(core, rights, class, index).page();
            self.mmu
                .map_range(ctx, self.dev, iova_page, pfn, pages, rights)?;
            self.add_shadow_bytes(size as u64);
            self.trace_grow(ctx, class, size as u64);
            Ok(Some(index))
        } else {
            // Sub-page class: split one page into `k` buffers sharing one
            // IOVA page (all same rights — the byte-protection guarantee),
            // return one and cache the rest privately.
            let k = (PAGE_SIZE / size) as u64;
            let Some(start) = array.reserve_aligned_run(k) else {
                return Ok(None);
            };
            let pfn = self.mem.alloc_frame(domain)?;
            for j in 0..k {
                array
                    .slot(start + j)
                    .shadow_pa
                    .store(pfn.base().add(j * size as u64).get(), Ordering::Release);
            }
            let iova_page = self.codec.encode(core, rights, class, start).page();
            debug_assert_eq!(
                self.codec.encode(core, rights, class, start).page_offset(),
                0,
                "aligned run must start an IOVA page"
            );
            self.mmu.map_page(ctx, self.dev, iova_page, pfn, rights)?;
            self.lockset_guarded(ctx, POOL_CACHE_LOCK, || format!("pool.cache[{li}]"));
            self.caches[li].lock().extend((start + 1..start + k).rev());
            self.add_shadow_bytes(PAGE_SIZE as u64);
            self.trace_grow(ctx, class, PAGE_SIZE as u64);
            Ok(Some(start))
        }
    }

    fn acquire_fallback(
        &self,
        ctx: &mut CoreCtx,
        os_buf: DmaBuf,
        rights: Perms,
    ) -> Result<Iova, DmaError> {
        // Cost model: the external scalable IOVA allocator of [42].
        ctx.charge(Phase::CopyMgmt, ctx.cost.iova_magazine_alloc);
        let size = os_buf.len.next_multiple_of(PAGE_SIZE);
        let pages = (size / PAGE_SIZE) as u64;
        let domain = self.mem.topology().domain_of_core(ctx.core);
        let pfn = self.mem.alloc_frames(domain, pages)?;
        let iova_page = self.fallback_pages.lock().alloc(pages);
        self.mmu
            .map_range(ctx, self.dev, iova_page, pfn, pages, rights)?;
        let iova = iova_page.base();
        self.lockset_guarded(ctx, POOL_FALLBACK_LOCK, || "pool.fallback_table".into());
        self.fallback.lock().insert(
            iova.get(),
            FallbackEntry {
                shadow_pa: pfn.base(),
                pages,
                os_pa: os_buf.pa,
                os_len: os_buf.len,
                rights,
                size,
            },
        );
        self.fallback_acquires.inc();
        self.add_shadow_bytes(size as u64);
        self.obs.set_now_hint(ctx.now());
        self.obs.trace(
            ctx.now(),
            ctx.core.0,
            Some(self.dev.0),
            EventKind::FallbackAcquire {
                iova: iova.get(),
                len: os_buf.len as u64,
            },
        );
        Ok(iova)
    }

    /// Looks up the shadow buffer whose IOVA is `iova` and returns its
    /// association (Table 2 `find_shadow`). O(1): the metadata index is
    /// decoded straight out of the IOVA.
    ///
    /// `iova` may point anywhere inside the shadow buffer; the lookup
    /// resolves to the containing buffer.
    pub fn find_shadow(&self, iova: Iova) -> Option<ShadowRef> {
        match self.codec.decode(iova) {
            Some(d) => {
                let ai = self.array_idx(d.core, d.class);
                let slot = self.arrays[ai].slot(d.index);
                let (os_pa, os_len) = slot.association()?;
                Some(ShadowRef {
                    os_pa,
                    os_len,
                    shadow_pa: slot.shadow_base(),
                    size: self.codec.class_size(d.class),
                    rights: d.rights,
                })
            }
            None => {
                let fb = self.fallback.lock();
                let base = Iova::new(iova.get() & !(PAGE_SIZE as u64 - 1));
                // Fallback buffers are page-aligned and multi-page; walk
                // back to the entry base.
                let mut probe = base;
                // Fallback buffers are bounded; cap the back-walk.
                let mut steps = 0u32;
                loop {
                    steps += 1;
                    if steps > 4096 {
                        return None;
                    }
                    if let Some(e) = fb.get(&probe.get()) {
                        if iova.get() < probe.get() + e.size as u64 {
                            return Some(ShadowRef {
                                os_pa: e.os_pa,
                                os_len: e.os_len,
                                shadow_pa: e.shadow_pa,
                                size: e.size,
                                rights: e.rights,
                            });
                        }
                        return None;
                    }
                    if probe.get() < PAGE_SIZE as u64
                        || probe.get() < (FALLBACK_PAGE_BASE << memsim::PAGE_SHIFT)
                    {
                        return None;
                    }
                    probe = Iova::new(probe.get() - PAGE_SIZE as u64);
                }
            }
        }
    }

    /// Releases the shadow buffer at `iova` back to the pool (Table 2
    /// `release_shadow`), disassociating it from its OS buffer. Shadow
    /// buffers are *sticky*: the buffer returns to the free list encoded
    /// in its IOVA — its owner core's — keeping it NUMA-local and its
    /// IOMMU mapping unchanged, no matter which core releases it.
    pub fn release_shadow(&self, ctx: &mut CoreCtx, iova: Iova) -> Result<(), DmaError> {
        ctx.charge(Phase::CopyMgmt, ctx.cost.shadow_pool_op);
        match self.codec.decode(iova) {
            Some(d) => {
                let ai = self.array_idx(d.core, d.class);
                let array = &self.arrays[ai];
                let slot = array.slot(d.index);
                if slot.association().is_none() {
                    return Err(DmaError::BadUnmap(iova));
                }
                slot.disassociate();
                let li = self.list_idx(d.core, d.class, d.rights);
                // Owner-core releases land in the magazine (until full);
                // cross-core releases go straight to the owner's depot
                // list — the magazine stays single-core.
                let owner_release = d.core == CoreId(ctx.core.0 % self.cores);
                if !(owner_release && self.magazine_push(ctx, li, d.index)) {
                    self.lists[li].push(array, d.index);
                }
            }
            None => {
                self.lockset_guarded(ctx, POOL_FALLBACK_LOCK, || "pool.fallback_table".into());
                let entry = self
                    .fallback
                    .lock()
                    .remove(&iova.get())
                    .ok_or(DmaError::BadUnmap(iova))?;
                // Fallback buffers are transient: strictly unmap,
                // invalidate, and free.
                let first = iova.page();
                let pages: Vec<IovaPage> = (0..entry.pages).map(|i| first.add(i)).collect();
                for &p in &pages {
                    self.mmu.unmap_page_nosync(ctx, self.dev, p)?;
                }
                self.mmu.invalidate_pages_sync(ctx, self.dev, &pages);
                self.mem.free_frames(entry.shadow_pa.pfn(), entry.pages)?;
                self.fallback_pages.lock().free(first, entry.pages);
                self.sub_shadow_bytes(entry.size as u64);
            }
        }
        self.releases.inc();
        self.in_flight.sub(1);
        Ok(())
    }

    /// Memory-pressure reclaim (§5.3 *Memory consumption*): retires up to
    /// `max_buffers` free shadow buffers owned by `core`, unmapping them
    /// (with strict invalidation) and returning their frames. Only
    /// page-multiple classes are reclaimed; sub-page fragments stay.
    ///
    /// Returns the number of bytes freed.
    pub fn reclaim(&self, ctx: &mut CoreCtx, core: CoreId, max_buffers: usize) -> u64 {
        let mut freed = 0u64;
        let mut budget = max_buffers;
        for class in 0..self.nclasses {
            let size = self.codec.class_size(class);
            if size < PAGE_SIZE {
                continue;
            }
            let pages = (size / PAGE_SIZE) as u64;
            let ai = self.array_idx(core, class);
            let array = &self.arrays[ai];
            for rights in Perms::ALL {
                if budget == 0 {
                    break;
                }
                let li = self.list_idx(core, class, rights);
                // Slots parked in the magazine are free too: return them
                // to the list so reclaim can retire them.
                self.drain_magazine_into_list(ctx, li, array);
                let drained = self.lists[li].drain(array, budget);
                budget -= drained.len();
                let mut to_inval = Vec::new();
                for index in drained {
                    let slot = array.slot(index);
                    let base = slot.shadow_base();
                    let iova_page = self.codec.encode(core, rights, class, index).page();
                    for i in 0..pages {
                        self.mmu
                            .unmap_page_nosync(ctx, self.dev, iova_page.add(i))
                            .expect("pool buffer must be mapped");
                        to_inval.push(iova_page.add(i));
                    }
                    self.mem
                        .free_frames(base.pfn(), pages)
                        .expect("pool buffer frames must be allocated");
                    array.retire(index);
                    freed += size as u64;
                    self.reclaimed.inc();
                }
                if !to_inval.is_empty() {
                    self.mmu.invalidate_pages_sync(ctx, self.dev, &to_inval);
                }
            }
        }
        self.sub_shadow_bytes(freed);
        if freed > 0 {
            self.obs.set_now_hint(ctx.now());
            self.obs.trace(
                ctx.now(),
                ctx.core.0,
                Some(self.dev.0),
                EventKind::PoolShrink { bytes: freed },
            );
        }
        freed
    }

    /// Statistics snapshot, consistent under concurrent acquire/release.
    ///
    /// `in_flight` is *derived* as `acquires - releases` from a stable
    /// pair of reads (both counters are re-read until neither moved), so
    /// the snapshot can never show a release without its acquire — the
    /// torn view that independent per-field loads allowed.
    pub fn stats(&self) -> PoolStats {
        loop {
            let acquires = self.acquires.get();
            let releases = self.releases.get();
            let s = PoolStats {
                acquires,
                releases,
                grows: self.grows.get(),
                fallback_acquires: self.fallback_acquires.get(),
                in_flight: acquires.saturating_sub(releases),
                peak_in_flight: self.peak_in_flight.get() as u64,
                shadow_bytes: self.shadow_bytes.get() as u64,
                peak_shadow_bytes: self.peak_shadow_bytes.get() as u64,
                reclaimed: self.reclaimed.get(),
            };
            if self.acquires.get() == acquires && self.releases.get() == releases {
                return s;
            }
        }
    }

    fn trace_grow(&self, ctx: &CoreCtx, class: usize, bytes: u64) {
        self.obs.set_now_hint(ctx.now());
        self.obs.trace(
            ctx.now(),
            ctx.core.0,
            Some(self.dev.0),
            EventKind::PoolGrow {
                class: class as u64,
                bytes,
            },
        );
    }

    fn add_shadow_bytes(&self, n: u64) {
        self.peak_shadow_bytes
            .set_max(self.shadow_bytes.add(n as i64));
    }

    fn sub_shadow_bytes(&self, n: u64) {
        self.shadow_bytes.sub(n as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{NumaDomain, NumaTopology};
    use simcore::CostModel;

    const DEV: DeviceId = DeviceId(0);

    struct Rig {
        mem: Arc<PhysMemory>,
        mmu: Arc<Iommu>,
        pool: ShadowPool,
    }

    fn rig_with(cfg: PoolConfig, topo: NumaTopology) -> Rig {
        let mem = Arc::new(PhysMemory::new(topo));
        let mmu = Arc::new(Iommu::new());
        let pool = ShadowPool::new(mem.clone(), mmu.clone(), DEV, cfg);
        Rig { mem, mmu, pool }
    }

    fn rig() -> Rig {
        rig_with(PoolConfig::default(), NumaTopology::new(4, 2, 4096))
    }

    fn ctx(core: u16) -> CoreCtx {
        CoreCtx::new(CoreId(core), Arc::new(CostModel::haswell_2_4ghz()))
    }

    fn os_buf(r: &Rig, len: usize) -> DmaBuf {
        let pages = (len as u64).div_ceil(PAGE_SIZE as u64);
        let pfn = r.mem.alloc_frames(NumaDomain(0), pages).unwrap();
        DmaBuf::new(pfn.base(), len)
    }

    #[test]
    fn acquire_find_release_roundtrip() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 1500);
        let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        let sref = r.pool.find_shadow(iova).expect("associated");
        assert_eq!(sref.os_pa, buf.pa);
        assert_eq!(sref.os_len, 1500);
        assert_eq!(sref.size, 4096, "smallest class that fits");
        assert_eq!(sref.rights, Perms::Write);
        r.pool.release_shadow(&mut c, iova).unwrap();
        assert!(r.pool.find_shadow(iova).is_none(), "disassociated");
        let s = r.pool.stats();
        assert_eq!((s.acquires, s.releases, s.in_flight), (1, 1, 0));
    }

    #[test]
    fn shadow_buffer_is_permanently_mapped_with_rights() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 1000);
        let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        // Device can write the shadow buffer...
        r.mmu
            .dma_write(&r.mem, DEV, iova, b"device writes here")
            .unwrap();
        // ...but not read it (rights = Write only).
        let mut b = [0u8; 4];
        assert!(r.mmu.dma_read(&r.mem, DEV, iova, &mut b).is_err());
        // Release does NOT unmap: the mapping is permanent (that's the
        // whole point — no IOTLB invalidation ever).
        let before = r.mmu.invalq().stats();
        r.pool.release_shadow(&mut c, iova).unwrap();
        assert_eq!(r.mmu.invalq().stats(), before);
        assert!(r.mmu.is_mapped(DEV, iova.page()));
    }

    #[test]
    fn reuse_is_sticky_same_buffer_same_list() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 512);
        let iova1 = r.pool.acquire_shadow(&mut c, buf, Perms::Read).unwrap();
        let pa1 = r.pool.find_shadow(iova1).unwrap().shadow_pa;
        r.pool.release_shadow(&mut c, iova1).unwrap();
        let iova2 = r.pool.acquire_shadow(&mut c, buf, Perms::Read).unwrap();
        assert_eq!(iova1, iova2, "same slot, same IOVA");
        assert_eq!(r.pool.find_shadow(iova2).unwrap().shadow_pa, pa1);
        assert_eq!(r.pool.stats().grows, 1, "no second allocation");
    }

    #[test]
    fn cross_core_release_returns_to_owner() {
        let r = rig();
        let mut c0 = ctx(0);
        let mut c3 = ctx(3);
        let buf = os_buf(&r, 256);
        let iova = r.pool.acquire_shadow(&mut c0, buf, Perms::Read).unwrap();
        // A different core releases it (e.g. unmap ran on another core).
        r.pool.release_shadow(&mut c3, iova).unwrap();
        // Owner core 0 gets the same buffer back; core 3 does not.
        let iova2 = r.pool.acquire_shadow(&mut c0, buf, Perms::Read).unwrap();
        assert_eq!(iova2, iova, "sticky: back on core 0's list");
    }

    #[test]
    fn distinct_rights_use_distinct_buffers_and_pages() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 100);
        let ir = r.pool.acquire_shadow(&mut c, buf, Perms::Read).unwrap();
        let iw = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        let (pr, pw) = (
            r.pool.find_shadow(ir).unwrap().shadow_pa,
            r.pool.find_shadow(iw).unwrap().shadow_pa,
        );
        assert_ne!(
            pr.pfn(),
            pw.pfn(),
            "read and write shadows never share a page"
        );
    }

    #[test]
    fn numa_placement_follows_core() {
        let r = rig(); // 4 cores, 2 domains: cores 0-1 -> dom0, 2-3 -> dom1
        let mut c0 = ctx(0);
        let mut c2 = ctx(2);
        let buf = os_buf(&r, 100);
        let i0 = r.pool.acquire_shadow(&mut c0, buf, Perms::Read).unwrap();
        let i2 = r.pool.acquire_shadow(&mut c2, buf, Perms::Read).unwrap();
        let topo = r.mem.topology();
        let d0 = topo.domain_of_pfn(r.pool.find_shadow(i0).unwrap().shadow_pa.pfn());
        let d2 = topo.domain_of_pfn(r.pool.find_shadow(i2).unwrap().shadow_pa.pfn());
        assert_eq!(d0, NumaDomain(0));
        assert_eq!(d2, NumaDomain(1));
    }

    #[test]
    fn large_class_uses_contiguous_64k() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 40_000);
        let iova = r
            .pool
            .acquire_shadow(&mut c, buf, Perms::ReadWrite)
            .unwrap();
        let sref = r.pool.find_shadow(iova).unwrap();
        assert_eq!(sref.size, 65536);
        // Whole 64 KB range is device-accessible.
        let data = vec![0x3c; 65536];
        r.mmu.dma_write(&r.mem, DEV, iova, &data).unwrap();
        r.pool.release_shadow(&mut c, iova).unwrap();
    }

    #[test]
    fn subpage_class_splits_page_and_caches_fragments() {
        let cfg = PoolConfig {
            codec: IovaCodec::new(6, 2, vec![1024, 4096, 65536]),
            max_buffers_per_class: 1024,
            magazines: None,
        };
        let r = rig_with(cfg, NumaTopology::new(4, 2, 4096));
        let mut c = ctx(0);
        let buf = os_buf(&r, 800);
        let frames_before = r.mem.stats().allocated_frames;
        // Four 1 KB buffers fit one page: 4 acquires, 1 frame, 1 grow.
        let iovas: Vec<Iova> = (0..4)
            .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
            .collect();
        assert_eq!(r.pool.stats().grows, 1, "one page split four ways");
        assert_eq!(r.mem.stats().allocated_frames, frames_before + 1);
        // All four shadows live on the same physical page and IOVA page
        // (same rights — the byte-granularity guarantee holds trivially).
        let pfns: std::collections::HashSet<_> = iovas
            .iter()
            .map(|&i| r.pool.find_shadow(i).unwrap().shadow_pa.pfn())
            .collect();
        assert_eq!(pfns.len(), 1);
        let pages: std::collections::HashSet<_> = iovas.iter().map(|i| i.page()).collect();
        assert_eq!(pages.len(), 1);
        // And they do not overlap.
        let mut bases: Vec<u64> = iovas
            .iter()
            .map(|&i| r.pool.find_shadow(i).unwrap().shadow_pa.get())
            .collect();
        bases.sort();
        for w in bases.windows(2) {
            assert!(w[0] + 1024 <= w[1]);
        }
        // A fifth acquire grows again.
        let _i5 = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        assert_eq!(r.pool.stats().grows, 2);
    }

    #[test]
    fn find_shadow_resolves_interior_offsets() {
        let r = rig();
        let mut c = ctx(1);
        let buf = os_buf(&r, 3000);
        let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        let interior = iova.add(1234);
        let sref = r.pool.find_shadow(interior).unwrap();
        assert_eq!(sref.os_pa, buf.pa);
        r.pool.release_shadow(&mut c, iova).unwrap();
    }

    #[test]
    fn oversized_buffer_takes_fallback_path() {
        let r = rig_with(PoolConfig::default(), NumaTopology::new(4, 2, 8192));
        let mut c = ctx(0);
        let buf = os_buf(&r, 100_000); // > 64 KB largest class
        let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        assert!(
            r.pool.codec().decode(iova).is_none(),
            "MSB-clear fallback IOVA"
        );
        assert_eq!(r.pool.stats().fallback_acquires, 1);
        let sref = r.pool.find_shadow(iova).unwrap();
        assert_eq!(sref.os_len, 100_000);
        // Device can use the whole range.
        let data = vec![9u8; 100_000];
        r.mmu.dma_write(&r.mem, DEV, iova, &data).unwrap();
        // Fallback release is strict: unmap + invalidate + frames freed.
        let frames = r.mem.stats().allocated_frames;
        r.pool.release_shadow(&mut c, iova).unwrap();
        assert!(r.mem.stats().allocated_frames < frames);
        assert!(r.mmu.invalq().stats().page_commands > 0);
        assert!(r.mmu.dma_write(&r.mem, DEV, iova, b"x").is_err());
    }

    #[test]
    fn metadata_exhaustion_falls_back() {
        let cfg = PoolConfig {
            codec: IovaCodec::paper_default(),
            max_buffers_per_class: 2,
            magazines: None,
        };
        let r = rig_with(cfg, NumaTopology::new(2, 1, 4096));
        let mut c = ctx(0);
        let buf = os_buf(&r, 1000);
        let mut iovas = Vec::new();
        for _ in 0..4 {
            iovas.push(r.pool.acquire_shadow(&mut c, buf, Perms::Read).unwrap());
        }
        let s = r.pool.stats();
        assert_eq!(s.fallback_acquires, 2, "third+fourth overflow to fallback");
        assert!(r.pool.codec().decode(iovas[3]).is_none());
        // All still resolvable and releasable.
        for iova in iovas {
            assert!(r.pool.find_shadow(iova).is_some());
            r.pool.release_shadow(&mut c, iova).unwrap();
        }
        assert_eq!(r.pool.stats().in_flight, 0);
    }

    #[test]
    fn release_of_unacquired_fails() {
        let r = rig();
        let mut c = ctx(0);
        let bogus = r.pool.codec().encode(CoreId(0), Perms::Read, 0, 7);
        assert!(matches!(
            r.pool.release_shadow(&mut c, bogus),
            Err(DmaError::BadUnmap(_))
        ));
    }

    #[test]
    fn reclaim_frees_memory_and_unmaps() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 4000);
        let iovas: Vec<Iova> = (0..8)
            .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
            .collect();
        for &i in &iovas {
            r.pool.release_shadow(&mut c, i).unwrap();
        }
        let bytes_before = r.pool.stats().shadow_bytes;
        assert_eq!(bytes_before, 8 * 4096);
        let freed = r.pool.reclaim(&mut c, CoreId(0), 5);
        assert_eq!(freed, 5 * 4096);
        assert_eq!(r.pool.stats().shadow_bytes, 3 * 4096);
        assert_eq!(r.pool.stats().reclaimed, 5);
        // Reclaimed buffers are unmapped; the IOVA of a reclaimed buffer
        // faults.
        assert!(r.mmu.dma_write(&r.mem, DEV, iovas[0], b"x").is_err());
        // The pool still works: new acquires re-grow.
        let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        assert!(r.pool.find_shadow(iova).is_some());
        r.mmu.dma_write(&r.mem, DEV, iova, b"fresh").unwrap();
    }

    #[test]
    fn shadow_bytes_tracks_footprint() {
        let r = rig();
        let mut c = ctx(0);
        let small = os_buf(&r, 100);
        let large = os_buf(&r, 65536);
        let i1 = r.pool.acquire_shadow(&mut c, small, Perms::Read).unwrap();
        let i2 = r.pool.acquire_shadow(&mut c, large, Perms::Read).unwrap();
        assert_eq!(r.pool.stats().shadow_bytes, 4096 + 65536);
        assert_eq!(r.pool.stats().peak_shadow_bytes, 4096 + 65536);
        r.pool.release_shadow(&mut c, i1).unwrap();
        r.pool.release_shadow(&mut c, i2).unwrap();
        // Releases keep memory (pool retains buffers); only reclaim frees.
        assert_eq!(r.pool.stats().shadow_bytes, 4096 + 65536);
    }

    #[test]
    fn charges_pool_op_costs() {
        let r = rig();
        let mut c = ctx(0);
        let buf = os_buf(&r, 1500);
        // Warm up so the steady-state path is measured.
        let i = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        r.pool.release_shadow(&mut c, i).unwrap();
        c.reset_stats();
        let i = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        r.pool.release_shadow(&mut c, i).unwrap();
        let mgmt = c.breakdown.get(Phase::CopyMgmt);
        assert_eq!(mgmt, c.cost.shadow_pool_op * 2);
        // ≈0.02 µs per the paper's Figure 5a.
        let us = mgmt.to_micros(c.cost.clock_ghz);
        assert!((us - 0.02).abs() < 0.005, "{us}");
    }

    #[test]
    fn concurrent_acquire_release_across_real_threads() {
        // Real-thread stress: each thread owns one core id and acquires
        // from its own lists while releasing buffers acquired by others.
        use std::sync::mpsc;
        let r = Arc::new(rig_with(
            PoolConfig::default(),
            NumaTopology::new(4, 2, 16384),
        ));
        let mem = r.mem.clone();
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..4u16 {
            let (tx, rx) = mpsc::channel::<Iova>();
            senders.push(tx);
            receivers.push(rx);
        }
        for (core, rx) in (0..4u16).zip(receivers) {
            let r = r.clone();
            let mem = mem.clone();
            let next = senders[((core as usize) + 1) % 4].clone();
            handles.push(std::thread::spawn(move || {
                let mut c = CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()));
                let pfn = mem.alloc_frame(NumaDomain(0)).unwrap();
                let buf = DmaBuf::new(pfn.base(), 1500);
                for _ in 0..500 {
                    let iova = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
                    assert!(r.pool.find_shadow(iova).is_some());
                    // Hand it to the neighbor core for release; if the
                    // neighbor already exited, release locally.
                    if let Err(e) = next.send(iova) {
                        r.pool.release_shadow(&mut c, e.0).unwrap();
                    }
                    if let Ok(other) = rx.try_recv() {
                        r.pool.release_shadow(&mut c, other).unwrap();
                    }
                }
                // Drain remaining.
                while let Ok(other) = rx.try_recv() {
                    r.pool.release_shadow(&mut c, other).unwrap();
                }
            }));
        }
        drop(senders);
        for h in handles {
            h.join().unwrap();
        }
        // A thread may exit before its neighbor's last sends arrive, so a
        // few buffers can remain in flight; the counts must reconcile.
        let s = r.pool.stats();
        assert_eq!(s.acquires, 2000);
        assert_eq!(s.in_flight, s.acquires - s.releases);
        assert!(s.releases >= 1500, "most buffers released cross-core");
    }

    fn mag_cfg(capacity: usize, refill: usize) -> PoolConfig {
        PoolConfig {
            magazines: Some(MagazineConfig { capacity, refill }),
            ..PoolConfig::default()
        }
    }

    #[test]
    fn magazine_serves_owner_core_reuse_without_the_depot() {
        let r = rig_with(mag_cfg(8, 4), NumaTopology::new(4, 2, 4096));
        let mut c = ctx(0);
        let buf = os_buf(&r, 1500);
        let i1 = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        r.pool.release_shadow(&mut c, i1).unwrap();
        assert_eq!(r.pool.magazine_len(), 1, "release parked in the magazine");
        let i2 = r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        assert_eq!(i2, i1, "same slot back from the magazine");
        assert_eq!(r.pool.magazine_len(), 0);
        assert_eq!(r.pool.stats().grows, 1, "no second allocation");
        let snap = r.pool.obs().registry().snapshot();
        assert_eq!(snap.counter("pool", "magazine_hits", Some(0)), Some(1));
    }

    #[test]
    fn magazine_overflow_spills_to_the_depot() {
        let r = rig_with(mag_cfg(2, 2), NumaTopology::new(2, 1, 16384));
        let mut c = ctx(0);
        let buf = os_buf(&r, 4000);
        let iovas: Vec<Iova> = (0..4)
            .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
            .collect();
        for &i in &iovas {
            r.pool.release_shadow(&mut c, i).unwrap();
        }
        assert_eq!(r.pool.magazine_len(), 2, "capacity bounds the magazine");
        // All four slots still reacquirable (2 magazine, 2 depot) with no
        // new growth.
        let grows = r.pool.stats().grows;
        let again: Vec<Iova> = (0..4)
            .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
            .collect();
        assert_eq!(r.pool.stats().grows, grows, "served from cached slots");
        let mut a: Vec<u64> = iovas.iter().map(|i| i.get()).collect();
        let mut b: Vec<u64> = again.iter().map(|i| i.get()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same four slots recycled");
    }

    #[test]
    fn depot_exhaustion_under_refill_grows_then_falls_back() {
        // Empty depot: the batched refill finds nothing and the grow path
        // runs; once metadata is exhausted the fallback table serves the
        // request — exactly as without magazines.
        let cfg = PoolConfig {
            codec: IovaCodec::paper_default(),
            max_buffers_per_class: 2,
            magazines: Some(MagazineConfig {
                capacity: 8,
                refill: 4,
            }),
        };
        let r = rig_with(cfg, NumaTopology::new(2, 1, 4096));
        let mut c = ctx(0);
        let buf = os_buf(&r, 1000);
        let mut iovas = Vec::new();
        for _ in 0..4 {
            iovas.push(r.pool.acquire_shadow(&mut c, buf, Perms::Read).unwrap());
        }
        let s = r.pool.stats();
        assert_eq!(s.grows, 4, "every empty-magazine miss attempts growth");
        assert_eq!(s.fallback_acquires, 2, "metadata exhaustion falls back");
        for iova in iovas {
            r.pool.release_shadow(&mut c, iova).unwrap();
        }
        assert_eq!(r.pool.stats().in_flight, 0);
    }

    #[test]
    fn cross_core_free_bypasses_the_releasers_magazine() {
        let r = rig_with(mag_cfg(8, 4), NumaTopology::new(4, 2, 4096));
        let mut c0 = ctx(0);
        let mut c3 = ctx(3);
        let buf = os_buf(&r, 256);
        let iova = r.pool.acquire_shadow(&mut c0, buf, Perms::Read).unwrap();
        r.pool.release_shadow(&mut c3, iova).unwrap();
        assert_eq!(
            r.pool.magazine_len(),
            0,
            "cross-core release goes to the owner's depot, not core 3's magazine"
        );
        // Sticky reuse still holds: owner core 0 gets the slot back.
        let iova2 = r.pool.acquire_shadow(&mut c0, buf, Perms::Read).unwrap();
        assert_eq!(iova2, iova);
    }

    #[test]
    fn drain_magazines_returns_every_cached_slot() {
        let r = rig_with(mag_cfg(16, 4), NumaTopology::new(4, 2, 16384));
        let buf = os_buf(&r, 1500);
        for core in 0..4u16 {
            let mut c = ctx(core);
            let ivs: Vec<Iova> = (0..3)
                .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
                .collect();
            for &i in &ivs {
                r.pool.release_shadow(&mut c, i).unwrap();
            }
        }
        assert_eq!(r.pool.magazine_len(), 12);
        let mut c = ctx(0);
        assert_eq!(r.pool.drain_magazines(&mut c), 12);
        assert_eq!(r.pool.magazine_len(), 0);
        assert_eq!(r.pool.drain_magazines(&mut c), 0, "idempotent");
        // Every slot is back in its depot list: reclaim can retire all 12.
        let mut freed = 0;
        for core in 0..4u16 {
            freed += r.pool.reclaim(&mut c, CoreId(core), 16);
        }
        assert_eq!(freed, 12 * 4096);
    }

    #[test]
    fn reclaim_reaches_slots_parked_in_magazines() {
        let r = rig_with(mag_cfg(16, 4), NumaTopology::new(2, 1, 16384));
        let mut c = ctx(0);
        let buf = os_buf(&r, 4000);
        let ivs: Vec<Iova> = (0..4)
            .map(|_| r.pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap())
            .collect();
        for &i in &ivs {
            r.pool.release_shadow(&mut c, i).unwrap();
        }
        assert_eq!(r.pool.magazine_len(), 4, "all parked in the magazine");
        // Reclaim drains the magazine into the list before retiring.
        let freed = r.pool.reclaim(&mut c, CoreId(0), 16);
        assert_eq!(freed, 4 * 4096);
        assert_eq!(r.pool.magazine_len(), 0);
    }

    #[test]
    fn stats_are_a_view_over_the_registry() {
        let obs = Obs::isolated();
        let mem = Arc::new(PhysMemory::new(NumaTopology::new(4, 2, 4096)));
        let mmu = Arc::new(Iommu::with_obs(obs.clone()));
        let pool = ShadowPool::with_obs(mem.clone(), mmu, DEV, PoolConfig::default(), obs.clone());
        let mut c = ctx(0);
        let pages = 1u64;
        let pfn = mem.alloc_frames(NumaDomain(0), pages).unwrap();
        let buf = DmaBuf::new(pfn.base(), 1500);
        let iova = pool.acquire_shadow(&mut c, buf, Perms::Write).unwrap();
        let snap = obs.registry().snapshot();
        let s = pool.stats();
        assert_eq!(snap.counter("pool", "acquires", Some(0)), Some(s.acquires));
        assert_eq!(snap.counter("pool", "grows", Some(0)), Some(s.grows));
        assert_eq!(
            snap.gauge("pool", "in_flight", Some(0)),
            Some(s.in_flight as i64)
        );
        assert_eq!(
            snap.gauge("pool", "shadow_bytes", Some(0)),
            Some(s.shadow_bytes as i64)
        );
        pool.release_shadow(&mut c, iova).unwrap();
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("pool", "releases", Some(0)), Some(1));
        assert_eq!(snap.gauge("pool", "in_flight", Some(0)), Some(0));
    }

    #[test]
    fn pool_lifecycle_events_are_traced() {
        let obs = Obs::isolated();
        let mem = Arc::new(PhysMemory::new(NumaTopology::new(4, 2, 8192)));
        let mmu = Arc::new(Iommu::with_obs(obs.clone()));
        let pool = ShadowPool::with_obs(mem.clone(), mmu, DEV, PoolConfig::default(), obs.clone());
        let mut c = ctx(0);
        let mk_buf = |len: usize| {
            let pages = (len as u64).div_ceil(PAGE_SIZE as u64);
            let pfn = mem.alloc_frames(NumaDomain(0), pages).unwrap();
            DmaBuf::new(pfn.base(), len)
        };
        // Grow (classed), fallback (oversized), reclaim (shrink).
        let i1 = pool
            .acquire_shadow(&mut c, mk_buf(1500), Perms::Write)
            .unwrap();
        let i2 = pool
            .acquire_shadow(&mut c, mk_buf(100_000), Perms::Write)
            .unwrap();
        pool.release_shadow(&mut c, i1).unwrap();
        pool.release_shadow(&mut c, i2).unwrap();
        pool.reclaim(&mut c, CoreId(0), 8);
        let names: Vec<&str> = obs
            .tracer()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert!(names.contains(&"PoolGrow"), "{names:?}");
        assert!(names.contains(&"FallbackAcquire"), "{names:?}");
        assert!(names.contains(&"PoolShrink"), "{names:?}");
        // Fallback release + reclaim both strictly invalidate.
        assert!(names.contains(&"IotlbInvalidate"), "{names:?}");
    }
}
