//! Property-based tests (proptest) of the core data structures and of the
//! DMA engines' end-to-end contract.

use dma_shadowing::dma_api::{DmaBuf, DmaDirection};
use dma_shadowing::iommu::{DeviceId, Iommu, IoPageTable, IovaPage, Perms};
use dma_shadowing::memsim::{Kmalloc, NumaDomain, NumaTopology, PhysMemory, Pfn, PAGE_SIZE};
use dma_shadowing::netsim::{EngineKind, ExpConfig, SimStack, NIC_DEV};
use dma_shadowing::shadow_core::IovaCodec;
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel, Cycles};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn any_perms() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::Read),
        Just(Perms::Write),
        Just(Perms::ReadWrite)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Figure 2 encoding is a bijection on its domain.
    #[test]
    fn codec_roundtrip(
        core in 0u16..128,
        rights in any_perms(),
        class in 0usize..2,
        index in 0u64..10_000,
        offset in 0u64..4096,
    ) {
        let codec = IovaCodec::paper_default();
        let base = codec.encode(CoreId(core), rights, class, index);
        let d = codec.decode(base.add(offset)).expect("decodes");
        prop_assert_eq!(d.core, CoreId(core));
        prop_assert_eq!(d.rights, rights);
        prop_assert_eq!(d.class, class);
        prop_assert_eq!(d.index, index);
        prop_assert_eq!(d.offset, offset);
    }

    /// Distinct (core, rights, class, index) tuples never collide.
    #[test]
    fn codec_injective(
        a in (0u16..128, 0usize..2, 0u64..5_000),
        b in (0u16..128, 0usize..2, 0u64..5_000),
    ) {
        let codec = IovaCodec::paper_default();
        let ia = codec.encode(CoreId(a.0), Perms::Read, a.1, a.2);
        let ib = codec.encode(CoreId(b.0), Perms::Read, b.1, b.2);
        prop_assert_eq!(ia == ib, a == b);
    }

    /// The 4-level page table behaves exactly like a flat map.
    #[test]
    fn pagetable_matches_reference_model(
        ops in proptest::collection::vec(
            (0u64..2_000, 0u64..1_000, prop::bool::ANY), 1..200
        ),
    ) {
        let mut pt = IoPageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (page, pfn, do_map) in ops {
            let page_k = IovaPage(page);
            if do_map {
                let r = pt.map(page_k, Pfn(pfn), Perms::ReadWrite);
                if let std::collections::hash_map::Entry::Vacant(e) = model.entry(page) {
                    prop_assert!(r.is_ok());
                    e.insert(pfn);
                } else {
                    prop_assert!(r.is_err(), "double map must fail");
                }
            } else {
                let r = pt.unmap(page_k);
                match model.remove(&page) {
                    Some(expect) => prop_assert_eq!(r.unwrap().pfn, Pfn(expect)),
                    None => prop_assert!(r.is_err(), "unmap of unmapped must fail"),
                }
            }
            prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
        for (&page, &pfn) in &model {
            prop_assert_eq!(pt.translate(IovaPage(page)).unwrap().pfn, Pfn(pfn));
        }
    }

    /// kmalloc never hands out overlapping live objects, across any
    /// alloc/free interleaving.
    #[test]
    fn kmalloc_objects_never_overlap(
        ops in proptest::collection::vec((1usize..6000, prop::bool::ANY), 1..150),
    ) {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(4096)));
        let km = Kmalloc::new(mem);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (pa, _) = live.swap_remove(0);
                km.free(dma_shadowing::memsim::PhysAddr(pa)).unwrap();
            } else {
                let pa = km.alloc(size, NumaDomain(0)).unwrap();
                live.push((pa.get(), size));
            }
            let mut sorted = live.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                prop_assert!(
                    w[0].0 + w[0].1 as u64 <= w[1].0,
                    "overlap: {:?} {:?}", w[0], w[1]
                );
            }
        }
    }

    /// Every engine preserves arbitrary payloads at arbitrary buffer
    /// offsets/sizes, both directions.
    #[test]
    fn engines_preserve_arbitrary_payloads(
        len in 1usize..9000,
        offset in 0usize..4096,
        to_device in prop::bool::ANY,
        seed in 0u8..255,
    ) {
        for kind in [EngineKind::Copy, EngineKind::IdentityPlus, EngineKind::LinuxDefer] {
            let stack = SimStack::new(kind, &ExpConfig::quick());
            let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
            ctx.seek(Cycles(1));
            let domain = stack.mem.topology().domain_of_core(CoreId(0));
            let frames = ((offset + len) as u64).div_ceil(PAGE_SIZE as u64);
            let base = stack.mem.alloc_frames(domain, frames).unwrap().base();
            let pa = base.add(offset as u64);
            let payload: Vec<u8> = (0..len).map(|i| (i as u8) ^ seed).collect();
            let bus = dma_shadowing::dma_api::Bus::Iommu {
                mmu: stack.mmu.clone(),
                mem: stack.mem.clone(),
            };
            if to_device {
                stack.mem.write(pa, &payload).unwrap();
                let m = stack.engine.map(&mut ctx, DmaBuf::new(pa, len), DmaDirection::ToDevice).unwrap();
                let mut out = vec![0u8; len];
                bus.read(NIC_DEV, m.iova.get(), &mut out).unwrap();
                stack.engine.unmap(&mut ctx, m).unwrap();
                prop_assert_eq!(out, payload, "{} read", kind);
            } else {
                let m = stack.engine.map(&mut ctx, DmaBuf::new(pa, len), DmaDirection::FromDevice).unwrap();
                bus.write(NIC_DEV, m.iova.get(), &payload).unwrap();
                stack.engine.unmap(&mut ctx, m).unwrap();
                prop_assert_eq!(stack.mem.read_vec(pa, len).unwrap(), payload, "{} write", kind);
            }
            stack.engine.flush_deferred(&mut ctx);
        }
    }

    /// Frame allocator: allocations are disjoint, frees coalesce, and the
    /// same memory can always be re-allocated.
    #[test]
    fn frame_allocator_invariants(
        sizes in proptest::collection::vec(1u64..16, 1..40),
    ) {
        let mem = PhysMemory::new(NumaTopology::tiny(1024));
        let mut held: Vec<(Pfn, u64)> = Vec::new();
        for (i, n) in sizes.iter().enumerate() {
            let pfn = mem.alloc_frames(NumaDomain(0), *n).unwrap();
            // Disjointness against everything held.
            for &(other, on) in &held {
                prop_assert!(
                    pfn.get() + n <= other.get() || other.get() + on <= pfn.get()
                );
            }
            held.push((pfn, *n));
            if i % 3 == 2 {
                let (p, n) = held.swap_remove(0);
                mem.free_frames(p, n).unwrap();
            }
        }
        let total_held: u64 = held.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(mem.stats().allocated_frames, total_held);
        for (p, n) in held {
            mem.free_frames(p, n).unwrap();
        }
        prop_assert_eq!(mem.stats().allocated_frames, 0);
        // After everything is freed the full range is one run again.
        prop_assert!(mem.alloc_frames(NumaDomain(0), 1024).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The shadow pool under random acquire/release sequences: no
    /// double-handout, correct associations, in-flight accounting exact.
    #[test]
    fn pool_random_acquire_release(
        ops in proptest::collection::vec(
            (1usize..70_000, any_perms(), prop::bool::ANY), 1..120
        ),
    ) {
        use dma_shadowing::shadow_core::{PoolConfig, ShadowPool};
        let mem = Arc::new(PhysMemory::new(NumaTopology::new(4, 2, 65_536)));
        let mmu = Arc::new(Iommu::new());
        let pool = ShadowPool::new(mem.clone(), mmu, DeviceId(0), PoolConfig::default());
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        ctx.seek(Cycles(1));
        let os = mem.alloc_frames(NumaDomain(0), 32).unwrap().base();
        let mut live: Vec<(dma_shadowing::iommu::Iova, usize)> = Vec::new();
        for (len, rights, release_one) in ops {
            if release_one && !live.is_empty() {
                let (iova, _) = live.swap_remove(0);
                pool.release_shadow(&mut ctx, iova).unwrap();
            } else {
                let iova = pool
                    .acquire_shadow(&mut ctx, DmaBuf::new(os, len), rights)
                    .unwrap();
                // No double-handout: IOVA not already live.
                prop_assert!(live.iter().all(|&(i, _)| i != iova));
                let sref = pool.find_shadow(iova).unwrap();
                prop_assert!(sref.size >= len);
                prop_assert_eq!(sref.os_len, len);
                live.push((iova, len));
            }
            prop_assert_eq!(pool.stats().in_flight, live.len() as u64);
        }
        // All shadow buffers resolvable until released.
        for (iova, len) in &live {
            prop_assert_eq!(pool.find_shadow(*iova).unwrap().os_len, *len);
        }
        for (iova, _) in live {
            pool.release_shadow(&mut ctx, iova).unwrap();
        }
        prop_assert_eq!(pool.stats().in_flight, 0);
    }
}
