//! Randomized property tests of the core data structures and of the DMA
//! engines' end-to-end contract, driven by the in-tree deterministic
//! [`SimRng`] (the workspace builds offline, so no proptest).

use dma_shadowing::dma_api::{DmaBuf, DmaDirection};
use dma_shadowing::iommu::{DeviceId, IoPageTable, Iommu, IovaPage, Perms};
use dma_shadowing::memsim::{Kmalloc, NumaDomain, NumaTopology, Pfn, PhysMemory, PAGE_SIZE};
use dma_shadowing::netsim::{EngineKind, ExpConfig, SimStack, NIC_DEV};
use dma_shadowing::shadow_core::IovaCodec;
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel, Cycles, SimRng};
use std::collections::HashMap;
use std::sync::Arc;

fn perms(rng: &mut SimRng) -> Perms {
    match rng.below(3) {
        0 => Perms::Read,
        1 => Perms::Write,
        _ => Perms::ReadWrite,
    }
}

/// The Figure 2 encoding is a bijection on its domain.
#[test]
fn codec_roundtrip() {
    let codec = IovaCodec::paper_default();
    let mut rng = SimRng::seed(0xc0dec);
    for _ in 0..256 {
        let core = rng.below(128) as u16;
        let rights = perms(&mut rng);
        let class = rng.below(2) as usize;
        let index = rng.below(10_000);
        let offset = rng.below(4096);
        let base = codec.encode(CoreId(core), rights, class, index);
        let d = codec.decode(base.add(offset)).expect("decodes");
        assert_eq!(d.core, CoreId(core));
        assert_eq!(d.rights, rights);
        assert_eq!(d.class, class);
        assert_eq!(d.index, index);
        assert_eq!(d.offset, offset);
    }
}

/// Distinct (core, rights, class, index) tuples never collide.
#[test]
fn codec_injective() {
    let codec = IovaCodec::paper_default();
    let mut rng = SimRng::seed(0x171e);
    for _ in 0..512 {
        let a = (
            rng.below(128) as u16,
            rng.below(2) as usize,
            rng.below(5_000),
        );
        let b = (
            rng.below(128) as u16,
            rng.below(2) as usize,
            rng.below(5_000),
        );
        let ia = codec.encode(CoreId(a.0), Perms::Read, a.1, a.2);
        let ib = codec.encode(CoreId(b.0), Perms::Read, b.1, b.2);
        assert_eq!(ia == ib, a == b, "{a:?} vs {b:?}");
    }
}

/// The 4-level page table behaves exactly like a flat map.
#[test]
fn pagetable_matches_reference_model() {
    let mut rng = SimRng::seed(0x9a9e);
    for _ in 0..64 {
        let mut pt = IoPageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let ops = 1 + rng.below(200) as usize;
        for _ in 0..ops {
            let page = rng.below(2_000);
            let pfn = rng.below(1_000);
            let page_k = IovaPage(page);
            if rng.chance(0.5) {
                let r = pt.map(page_k, Pfn(pfn), Perms::ReadWrite);
                if let std::collections::hash_map::Entry::Vacant(e) = model.entry(page) {
                    assert!(r.is_ok());
                    e.insert(pfn);
                } else {
                    assert!(r.is_err(), "double map must fail");
                }
            } else {
                let r = pt.unmap(page_k);
                match model.remove(&page) {
                    Some(expect) => assert_eq!(r.unwrap().pfn, Pfn(expect)),
                    None => assert!(r.is_err(), "unmap of unmapped must fail"),
                }
            }
            assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
        for (&page, &pfn) in &model {
            assert_eq!(pt.translate(IovaPage(page)).unwrap().pfn, Pfn(pfn));
        }
    }
}

/// kmalloc never hands out overlapping live objects, across any
/// alloc/free interleaving.
#[test]
fn kmalloc_objects_never_overlap() {
    let mut rng = SimRng::seed(0x6a110c);
    for _ in 0..48 {
        let mem = Arc::new(PhysMemory::new(NumaTopology::tiny(4096)));
        let km = Kmalloc::new(mem);
        let mut live: Vec<(u64, usize)> = Vec::new();
        let ops = 1 + rng.below(150) as usize;
        for _ in 0..ops {
            let size = 1 + rng.below(5999) as usize;
            if rng.chance(0.5) && !live.is_empty() {
                let (pa, _) = live.swap_remove(0);
                km.free(dma_shadowing::memsim::PhysAddr(pa)).unwrap();
            } else {
                let pa = km.alloc(size, NumaDomain(0)).unwrap();
                live.push((pa.get(), size));
            }
            let mut sorted = live.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                assert!(
                    w[0].0 + w[0].1 as u64 <= w[1].0,
                    "overlap: {:?} {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Every engine preserves arbitrary payloads at arbitrary buffer
/// offsets/sizes, both directions.
#[test]
fn engines_preserve_arbitrary_payloads() {
    let mut rng = SimRng::seed(0xe2e);
    for _ in 0..24 {
        let len = 1 + rng.below(8999) as usize;
        let offset = rng.below(4096) as usize;
        let to_device = rng.chance(0.5);
        let seed = rng.below(256) as u8;
        for kind in [
            EngineKind::Copy,
            EngineKind::IdentityPlus,
            EngineKind::LinuxDefer,
        ] {
            let stack = SimStack::new(kind, &ExpConfig::quick());
            let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
            ctx.seek(Cycles(1));
            let domain = stack.mem.topology().domain_of_core(CoreId(0));
            let frames = ((offset + len) as u64).div_ceil(PAGE_SIZE as u64);
            let base = stack.mem.alloc_frames(domain, frames).unwrap().base();
            let pa = base.add(offset as u64);
            let payload: Vec<u8> = (0..len).map(|i| (i as u8) ^ seed).collect();
            let bus = dma_shadowing::dma_api::Bus::Iommu {
                mmu: stack.mmu.clone(),
                mem: stack.mem.clone(),
            };
            if to_device {
                stack.mem.write(pa, &payload).unwrap();
                let m = stack
                    .engine
                    .map(&mut ctx, DmaBuf::new(pa, len), DmaDirection::ToDevice)
                    .unwrap();
                let mut out = vec![0u8; len];
                bus.read(NIC_DEV, m.iova.get(), &mut out).unwrap();
                stack.engine.unmap(&mut ctx, m).unwrap();
                assert_eq!(out, payload, "{kind} read");
            } else {
                let m = stack
                    .engine
                    .map(&mut ctx, DmaBuf::new(pa, len), DmaDirection::FromDevice)
                    .unwrap();
                bus.write(NIC_DEV, m.iova.get(), &payload).unwrap();
                stack.engine.unmap(&mut ctx, m).unwrap();
                assert_eq!(
                    stack.mem.read_vec(pa, len).unwrap(),
                    payload,
                    "{kind} write"
                );
            }
            stack.engine.flush_deferred(&mut ctx);
        }
    }
}

/// Frame allocator: allocations are disjoint, frees coalesce, and the
/// same memory can always be re-allocated.
#[test]
fn frame_allocator_invariants() {
    let mut rng = SimRng::seed(0xf4a3e);
    for _ in 0..64 {
        let mem = PhysMemory::new(NumaTopology::tiny(1024));
        let mut held: Vec<(Pfn, u64)> = Vec::new();
        let count = 1 + rng.below(40) as usize;
        for i in 0..count {
            let n = rng.range(1, 16);
            let pfn = mem.alloc_frames(NumaDomain(0), n).unwrap();
            // Disjointness against everything held.
            for &(other, on) in &held {
                assert!(pfn.get() + n <= other.get() || other.get() + on <= pfn.get());
            }
            held.push((pfn, n));
            if i % 3 == 2 {
                let (p, n) = held.swap_remove(0);
                mem.free_frames(p, n).unwrap();
            }
        }
        let total_held: u64 = held.iter().map(|&(_, n)| n).sum();
        assert_eq!(mem.stats().allocated_frames, total_held);
        for (p, n) in held {
            mem.free_frames(p, n).unwrap();
        }
        assert_eq!(mem.stats().allocated_frames, 0);
        // After everything is freed the full range is one run again.
        assert!(mem.alloc_frames(NumaDomain(0), 1024).is_ok());
    }
}

/// The shadow pool under random acquire/release sequences: no
/// double-handout, correct associations, in-flight accounting exact.
#[test]
fn pool_random_acquire_release() {
    use dma_shadowing::shadow_core::{PoolConfig, ShadowPool};
    let mut rng = SimRng::seed(0x9001);
    for _ in 0..16 {
        let mem = Arc::new(PhysMemory::new(NumaTopology::new(4, 2, 65_536)));
        let mmu = Arc::new(Iommu::new());
        let pool = ShadowPool::new(mem.clone(), mmu, DeviceId(0), PoolConfig::default());
        let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
        ctx.seek(Cycles(1));
        let os = mem.alloc_frames(NumaDomain(0), 32).unwrap().base();
        let mut live: Vec<(dma_shadowing::iommu::Iova, usize)> = Vec::new();
        let ops = 1 + rng.below(120) as usize;
        for _ in 0..ops {
            let len = 1 + rng.below(69_999) as usize;
            let rights = perms(&mut rng);
            if rng.chance(0.5) && !live.is_empty() {
                let (iova, _) = live.swap_remove(0);
                pool.release_shadow(&mut ctx, iova).unwrap();
            } else {
                let iova = pool
                    .acquire_shadow(&mut ctx, DmaBuf::new(os, len), rights)
                    .unwrap();
                // No double-handout: IOVA not already live.
                assert!(live.iter().all(|&(i, _)| i != iova));
                let sref = pool.find_shadow(iova).unwrap();
                assert!(sref.size >= len);
                assert_eq!(sref.os_len, len);
                live.push((iova, len));
            }
            assert_eq!(pool.stats().in_flight, live.len() as u64);
        }
        // All shadow buffers resolvable until released.
        for (iova, len) in &live {
            assert_eq!(pool.find_shadow(*iova).unwrap().os_len, *len);
        }
        for (iova, _) in live {
            pool.release_shadow(&mut ctx, iova).unwrap();
        }
        assert_eq!(pool.stats().in_flight, 0);
    }
}
