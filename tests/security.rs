//! Security integration tests: the paper's Table 1, validated by mounting
//! the actual attacks, plus targeted checks of the DMA-shadowing security
//! argument (§5.2).

use dma_shadowing::attacks::{self, run_matrix};
use dma_shadowing::dma_api::{Bus, DmaBuf, DmaDirection};
use dma_shadowing::netsim::{EngineKind, ExpConfig, SimStack, NIC_DEV};
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

#[test]
fn observed_security_matches_table1() {
    let rows = run_matrix();
    for (engine, iommu, subpage, window) in attacks::expected_table1() {
        let row = rows.iter().find(|r| r.engine == engine).unwrap();
        assert_eq!(
            (
                row.iommu_protection,
                row.sub_page_protect,
                row.no_vulnerability_window
            ),
            (iommu, subpage, window),
            "Table 1 row for {engine}"
        );
    }
}

#[test]
fn shadowing_is_secure_even_though_shadows_stay_mapped() {
    // §5.2's security argument, tested directly:
    // 1. bytes the device READS can only come from data copied from a
    //    buffer mapped to-device;
    // 2. bytes the device WRITES after release are never observed by the
    //    OS (overwritten by a later copy or never copied out).
    let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    ctx.seek(Cycles(1));
    let bus = Bus::Iommu {
        mmu: stack.mmu.clone(),
        mem: stack.mem.clone(),
    };
    let domain = stack.mem.topology().domain_of_core(CoreId(0));

    // Round 1: a to-device buffer with a known value.
    let a = stack.kmalloc.alloc(1000, domain).unwrap();
    stack.mem.fill(a, 0xaa, 1000).unwrap();
    let ma = stack
        .engine
        .map(&mut ctx, DmaBuf::new(a, 1000), DmaDirection::ToDevice)
        .unwrap();
    let mut seen = vec![0u8; 1000];
    bus.read(NIC_DEV, ma.iova.get(), &mut seen).unwrap();
    assert_eq!(seen, vec![0xaa; 1000], "device reads the copied data");
    stack.engine.unmap(&mut ctx, ma).unwrap();

    // Round 2: the *same* shadow buffer is recycled for a from-device
    // mapping of a DIFFERENT OS buffer. The paper's pool guarantees pages
    // hold same-rights shadows only, so the recycled read-buffer cannot
    // serve a write mapping... acquire a write mapping and observe it uses
    // other memory:
    let b = stack.kmalloc.alloc(1000, domain).unwrap();
    let mb = stack
        .engine
        .map(&mut ctx, DmaBuf::new(b, 1000), DmaDirection::FromDevice)
        .unwrap();
    assert_ne!(
        mb.iova.page(),
        ma.iova.page(),
        "write shadow != read shadow page"
    );

    // A malicious late read of the OLD read-mapping's IOVA sees stale
    // shadow data (0xaa) — data the device was already given. Never fresh
    // OS data.
    let mut stale = vec![0u8; 1000];
    bus.read(NIC_DEV, ma.iova.get(), &mut stale).unwrap();
    assert_eq!(stale, vec![0xaa; 1000], "only previously-authorized bytes");

    // The device writes the live write-shadow; after unmap the OS gets it.
    bus.write(NIC_DEV, mb.iova.get(), &vec![0xbb; 1000])
        .unwrap();
    stack.engine.unmap(&mut ctx, mb).unwrap();
    assert_eq!(stack.mem.read_vec(b, 1000).unwrap(), vec![0xbb; 1000]);

    // A write AFTER release mutates only the shadow; remap the same OS
    // buffer and verify the late write is overwritten by the fresh copy
    // and never observed.
    let _ = bus.write(NIC_DEV, mb.iova.get(), &vec![0xcc; 1000]);
    assert_eq!(
        stack.mem.read_vec(b, 1000).unwrap(),
        vec![0xbb; 1000],
        "late device write never reaches the OS buffer"
    );
}

#[test]
fn device_cannot_reach_os_buffer_even_while_mapped() {
    // Byte granularity, strongest form: with a live copy-engine mapping,
    // the OS buffer's own physical page is never device-visible. (Its raw
    // address may coincide with some unrelated low IOVA — a coherent ring,
    // say — so the check is that no IOVA resolves to the OS buffer's
    // *content*, not merely that the access faults.)
    let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    ctx.seek(Cycles(1));
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let buf = stack.kmalloc.alloc(1500, domain).unwrap();
    let sentinel = b"OS-PRIVATE-SENTINEL-0123456789AB";
    stack.mem.write(buf, sentinel).unwrap();
    let m = stack
        .engine
        .map(&mut ctx, DmaBuf::new(buf, 1500), DmaDirection::FromDevice)
        .unwrap();
    let bus = Bus::Iommu {
        mmu: stack.mmu.clone(),
        mem: stack.mem.clone(),
    };
    // Probing the OS buffer's physical address as an IOVA either faults or
    // lands in some other (shadow/coherent) memory — never in the buffer.
    let mut probe = vec![0u8; sentinel.len()];
    match bus.read(NIC_DEV, buf.get(), &mut probe) {
        Err(_) => {}
        Ok(()) => assert_ne!(probe, sentinel, "device must not see OS bytes"),
    }
    // And the mapped IOVA shows the shadow (zeroed for FromDevice), not
    // the sentinel.
    let mut via_iova = vec![0u8; sentinel.len()];
    assert!(
        bus.read(NIC_DEV, m.iova.get(), &mut via_iova).is_err(),
        "write-only shadow is not readable at all"
    );
    stack.engine.unmap(&mut ctx, m).unwrap();
}

#[test]
fn vulnerability_window_bounded_by_batch() {
    // Under identity-, the window closes after 250 unmaps at the latest.
    let stack = SimStack::new(EngineKind::IdentityMinus, &ExpConfig::quick());
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()));
    ctx.seek(Cycles(1));
    let domain = stack.mem.topology().domain_of_core(CoreId(0));
    let victim = stack.kmalloc.alloc(4096, domain).unwrap();
    let m = stack
        .engine
        .map(
            &mut ctx,
            DmaBuf::new(victim, 4096),
            DmaDirection::FromDevice,
        )
        .unwrap();
    let bus = Bus::Iommu {
        mmu: stack.mmu.clone(),
        mem: stack.mem.clone(),
    };
    bus.write(NIC_DEV, m.iova.get(), b"warm").unwrap();
    stack.engine.unmap(&mut ctx, m).unwrap();
    // Window open now.
    assert!(bus.write(NIC_DEV, m.iova.get(), b"attack").is_ok());
    // Drive 250 more map/unmap cycles through the engine: the batch drains.
    let other = stack.kmalloc.alloc(4096, domain).unwrap();
    for _ in 0..250 {
        let mi = stack
            .engine
            .map(&mut ctx, DmaBuf::new(other, 4096), DmaDirection::FromDevice)
            .unwrap();
        stack.engine.unmap(&mut ctx, mi).unwrap();
    }
    assert!(
        bus.write(NIC_DEV, m.iova.get(), b"late").is_err(),
        "window closed by the 250-unmap batch drain"
    );
}

#[test]
fn fault_log_records_blocked_attacks() {
    let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
    let bus = Bus::Iommu {
        mmu: stack.mmu.clone(),
        mem: stack.mem.clone(),
    };
    for i in 0..10u64 {
        let _ = bus.write(NIC_DEV, 0x100_0000 + i * 4096, b"probe");
    }
    assert_eq!(stack.mmu.fault_count(), 10);
    for f in stack.mmu.faults() {
        assert_eq!(f.device, NIC_DEV);
    }
}
