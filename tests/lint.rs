//! The lint must hold two properties at once: the real workspace passes,
//! and a planted fixture workspace (`tests/fixtures/lint-bad`) fails with
//! every rule firing. Together they prove the scanner neither rubber-stamps
//! nor cries wolf.

use dma_shadowing::lint::{lint_workspace, lint_workspace_pass, lock_order_analysis, Pass};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn real_workspace_is_lint_clean() {
    let violations = lint_workspace(repo_root()).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace must be lint-clean, got:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_lock_inventory_is_acyclic_and_complete() {
    let report = lock_order_analysis(repo_root()).expect("scan workspace");
    assert!(
        report.cycles.is_empty(),
        "lock-order cycles in the real workspace: {:?}",
        report.cycles
    );
    let names = report.lock_names();
    for expected in [
        "pool-cache",
        "pool-fallback",
        "deferred-flush-list",
        "linux-iova-rbtree",
        "scalable-iova-shared",
        "eiovar-iova-cache",
        "iommu-invalidation-queue",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "lock `{expected}` missing from the static inventory: {names:?}"
        );
    }
}

#[test]
fn planted_fixture_trips_every_rule() {
    let fixture = repo_root().join("tests/fixtures/lint-bad");
    let violations = lint_workspace(&fixture).expect("scan fixture");
    let count = |rule: &str| violations.iter().filter(|v| v.rule == rule).count();

    // `serde` in the fixture root plus `rand`/`proptest` in badcrate.
    assert_eq!(count("external-dep"), 3, "{violations:?}");
    // `.unwrap()` and `.expect(` outside `#[cfg(test)]`, no waiver.
    assert_eq!(count("panic"), 2, "{violations:?}");
    // `PhysAddr(base + idx * 4096)` outside memsim.
    assert_eq!(count("phys-addr-arith"), 1, "{violations:?}");
    // `use std::fs;` outside the bench / obs-sink allowance.
    assert_eq!(count("ambient-io"), 1, "{violations:?}");
    // `Ordering::Relaxed` outside the obs counters, no waiver.
    assert_eq!(count("relaxed-atomic"), 1, "{violations:?}");
    // `deadlock.rs` nests fixture-a / fixture-b in both orders: one cycle.
    assert_eq!(count("lock-order"), 1, "{violations:?}");
    let cycle = violations
        .iter()
        .find(|v| v.rule == "lock-order")
        .expect("cycle violation");
    assert!(
        cycle.detail.contains("fixture-a -> fixture-b -> fixture-a"),
        "{cycle:?}"
    );

    // `protocol.rs` plants one violation per DMA protocol rule (plus the
    // `leak_via_question` variant) with clean controls alongside.
    assert_eq!(count("use-after-unmap"), 1, "{violations:?}");
    assert_eq!(count("leak-on-exit"), 2, "{violations:?}");
    assert_eq!(count("double-unmap"), 1, "{violations:?}");
    assert_eq!(count("sync-before-cpu-read"), 1, "{violations:?}");
    // One undocumented `unsafe`; `poke_documented` must NOT be counted.
    assert_eq!(count("unsafe-no-safety"), 1, "{violations:?}");

    // The `#[cfg(test)]` unwrap in the fixture must NOT be counted; the
    // totals above are exhaustive.
    assert_eq!(violations.len(), 15, "{violations:?}");

    // The in-tree path dependency (`memsim = {{ path = .. }}`) is allowed.
    assert!(
        !violations
            .iter()
            .any(|v| v.rule == "external-dep" && v.detail.contains("memsim")),
        "{violations:?}"
    );
}

#[test]
fn fast_pass_skips_protocol_lock_order_and_unsafe() {
    let fixture = repo_root().join("tests/fixtures/lint-bad");
    let fast = lint_workspace_pass(&fixture, Pass::Fast).expect("scan fixture");
    let skipped = [
        "use-after-unmap",
        "leak-on-exit",
        "double-unmap",
        "sync-before-cpu-read",
        "unsafe-no-safety",
        "lock-order",
    ];
    assert!(fast.iter().all(|v| !skipped.contains(&v.rule)), "{fast:?}");
    // The style + manifest findings are exactly the full pass minus the
    // protocol, unsafe, and lock-order ones.
    assert_eq!(fast.len(), 8, "{fast:?}");
}
