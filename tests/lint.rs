//! The lint must hold two properties at once: the real workspace passes,
//! and a planted fixture workspace (`tests/fixtures/lint-bad`) fails with
//! every rule firing. Together they prove the scanner neither rubber-stamps
//! nor cries wolf.

use dma_shadowing::lint::{
    lint_workspace, lint_workspace_pass, lint_workspace_report, lock_order_analysis, Pass,
};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn real_workspace_is_lint_clean() {
    let violations = lint_workspace(repo_root()).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace must be lint-clean, got:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_workspace_lock_inventory_is_acyclic_and_complete() {
    let report = lock_order_analysis(repo_root()).expect("scan workspace");
    assert!(
        report.cycles.is_empty(),
        "lock-order cycles in the real workspace: {:?}",
        report.cycles
    );
    let names = report.lock_names();
    for expected in [
        "pool-cache",
        "pool-fallback",
        "deferred-flush-list",
        "linux-iova-rbtree",
        "scalable-iova-shared",
        "eiovar-iova-cache",
        "iommu-invalidation-queue",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "lock `{expected}` missing from the static inventory: {names:?}"
        );
    }
}

#[test]
fn planted_fixture_trips_every_rule() {
    let fixture = repo_root().join("tests/fixtures/lint-bad");
    let violations = lint_workspace(&fixture).expect("scan fixture");
    let count = |rule: &str| violations.iter().filter(|v| v.rule == rule).count();

    // `serde` in the fixture root plus `rand`/`proptest` in badcrate.
    assert_eq!(count("external-dep"), 3, "{violations:?}");
    // `.unwrap()` and `.expect(` outside `#[cfg(test)]`, no waiver.
    assert_eq!(count("panic"), 2, "{violations:?}");
    // `PhysAddr(base + idx * 4096)` outside memsim.
    assert_eq!(count("phys-addr-arith"), 1, "{violations:?}");
    // `use std::fs;` outside the bench / obs-sink allowance.
    assert_eq!(count("ambient-io"), 1, "{violations:?}");
    // `Ordering::Relaxed` outside the obs counters, no waiver.
    assert_eq!(count("relaxed-atomic"), 1, "{violations:?}");
    // `deadlock.rs` nests fixture-a / fixture-b in both orders: one cycle.
    assert_eq!(count("lock-order"), 1, "{violations:?}");
    let cycle = violations
        .iter()
        .find(|v| v.rule == "lock-order")
        .expect("cycle violation");
    assert!(
        cycle.detail.contains("fixture-a -> fixture-b -> fixture-a"),
        "{cycle:?}"
    );

    // `protocol.rs` plants one violation per DMA protocol rule (plus the
    // `leak_via_question` variant); `interproc.rs` adds the cross-function
    // variants: a use-after-unmap through a returned handle killed inside a
    // helper, and a leak whose helper call the summaries prove is not an
    // ownership transfer. The clean controls (`helper_roundtrip`,
    // `taint_bounds_checked`, `defer_unmap`) must stay silent.
    assert_eq!(count("use-after-unmap"), 2, "{violations:?}");
    assert_eq!(count("leak-on-exit"), 3, "{violations:?}");
    assert_eq!(count("double-unmap"), 1, "{violations:?}");
    assert_eq!(count("sync-before-cpu-read"), 1, "{violations:?}");
    // `taint_to_index` only: device-read value indexing without a check.
    assert_eq!(count("device-taint"), 1, "{violations:?}");
    // The planted stale `double-unmap` waiver in `interproc.rs`.
    assert_eq!(count("dead-waiver"), 1, "{violations:?}");
    let dead = violations
        .iter()
        .find(|v| v.rule == "dead-waiver")
        .expect("dead waiver");
    assert!(
        dead.file.ends_with("interproc.rs") && dead.detail.contains("double-unmap"),
        "{dead:?}"
    );
    // One undocumented `unsafe`; `poke_documented` must NOT be counted.
    assert_eq!(count("unsafe-no-safety"), 1, "{violations:?}");

    // The `#[cfg(test)]` unwrap in the fixture must NOT be counted; the
    // totals above are exhaustive.
    assert_eq!(violations.len(), 19, "{violations:?}");

    // The in-tree path dependency (`memsim = {{ path = .. }}`) is allowed.
    assert!(
        !violations
            .iter()
            .any(|v| v.rule == "external-dep" && v.detail.contains("memsim")),
        "{violations:?}"
    );
}

#[test]
fn fixture_interprocedural_product_is_exported() {
    let fixture = repo_root().join("tests/fixtures/lint-bad");
    let report = lint_workspace_report(&fixture, Pass::Full).expect("scan fixture");
    let analysis = report.protocol.expect("full pass builds the analysis");

    // The call graph resolved the planted helpers: `leak_across_helper`
    // calls `touch_stats`, `use_after_helper_unmap` calls `make_rx` and
    // `finish` — all by name+arity, no annotations.
    let g = &analysis.graph;
    let id = |name: &str| {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("function `{name}` missing from the graph"))
    };
    assert!(g.callees[id("leak_across_helper")].contains(&id("touch_stats")));
    assert!(g.callees[id("use_after_helper_unmap")].contains(&id("make_rx")));
    assert!(g.callees[id("use_after_helper_unmap")].contains(&id("finish")));

    // `finish` must-unmap its third parameter; `make_rx` returns a fresh
    // mapping — the two facts the planted violations hinge on.
    let finish = &analysis.summaries[id("finish")];
    assert!(finish.params[2].must_unmap, "{finish:?}");
    let make_rx = &analysis.summaries[id("make_rx")];
    assert!(
        matches!(
            make_rx.ret,
            dma_shadowing::lint::RetEffect::FreshMapped { .. }
        ),
        "{make_rx:?}"
    );

    // `defer_unmap` hands its handle to a closure: an escape *note*
    // (declared, not hidden), never a violation.
    assert!(
        analysis.escapes.iter().any(|e| {
            e.note.function == "defer_unmap"
                && e.note.var == "m"
                && e.note.kind.name() == "closure-capture"
        }),
        "{:?}",
        analysis.escapes
    );

    // The taint pass saw the device read feeding `taint_to_index` and the
    // guarded control.
    assert!(analysis.taint.sources >= 2, "{:?}", analysis.taint);
    assert!(analysis.taint.sanitized_vars >= 1, "{:?}", analysis.taint);
}

#[test]
fn real_workspace_interprocedural_product_is_pinned() {
    let report = lint_workspace_report(repo_root(), Pass::Full).expect("scan workspace");
    let analysis = report.protocol.expect("full pass builds the analysis");
    let g = &analysis.graph;

    // The graph covers the whole workspace: floors, not exact counts, so
    // ordinary growth does not churn this test.
    let closures = g.nodes.iter().filter(|n| n.is_closure).count();
    assert!(
        g.nodes.len() - closures > 900,
        "{} functions",
        g.nodes.len()
    );
    assert!(closures > 300, "{closures} closures");
    assert!(g.callees.iter().map(|c| c.len()).sum::<usize>() > 8000);

    // Every handle escape in the real workspace is accounted for. This
    // count is pinned on purpose: a new escape means a handle left the
    // checker's sight, and whoever adds one must look at it and re-pin.
    assert_eq!(analysis.escapes.len(), 3, "{:?}", analysis.escapes);
    for e in &analysis.escapes {
        assert!(
            matches!(e.note.kind.name(), "closure-capture" | "unknown-callee"),
            "{e:?}"
        );
    }

    // Device-tainted values exist (rx paths) but every one is either
    // sink-free or guarded: zero device-taint violations is the
    // workspace-clean assertion above, and the stats prove the pass
    // actually ran over real sources rather than finding nothing to do.
    assert!(analysis.taint.sources >= 5, "{:?}", analysis.taint);
}

#[test]
fn fast_pass_skips_protocol_lock_order_and_unsafe() {
    let fixture = repo_root().join("tests/fixtures/lint-bad");
    let fast = lint_workspace_pass(&fixture, Pass::Fast).expect("scan fixture");
    let skipped = [
        "use-after-unmap",
        "leak-on-exit",
        "double-unmap",
        "sync-before-cpu-read",
        "unsafe-no-safety",
        "lock-order",
        "device-taint",
        "dead-waiver",
    ];
    assert!(fast.iter().all(|v| !skipped.contains(&v.rule)), "{fast:?}");
    // The style + manifest findings are exactly the full pass minus the
    // protocol, unsafe, and lock-order ones.
    assert_eq!(fast.len(), 8, "{fast:?}");
}
