//! Planted interprocedural fixtures: each violation here is invisible to
//! a per-function checker and only falls out of the call-graph +
//! summary pass, with summary-proven clean controls alongside. Never
//! compiled.

// lint: allow(panic) — fixture bodies use expect() to keep the planted statements one-liners
// lint: allow(double-unmap) — stale reason left over from an earlier refactor

/// Helper that only *reads* the handle: its summary has no unmap effect,
/// so the caller keeps the leak obligation.
fn touch_stats(stats: &mut Stats, m: &Mapping) {
    stats.record(m.iova.get());
}

/// Helper that consumes and unmaps the handle: `must_unmap` on its third
/// parameter, which the callers below rely on.
fn finish(engine: &E, ctx: &mut C, m: Mapping) {
    engine.unmap(ctx, m).expect("unmap");
}

/// Helper whose tail expression is a fresh mapping: its return summary is
/// `fresh-mapped`, so callers inherit the handle obligations.
fn make_rx(engine: &E, ctx: &mut C) -> Mapping {
    engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::FromDevice)
        .expect("map")
}

/// The helper call is NOT an unmap: the mapping is still live at exit
/// (interprocedural leak-on-exit).
pub fn leak_across_helper(engine: &E, ctx: &mut C, stats: &mut Stats) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    touch_stats(stats, &m);
}

/// Clean control: the summary proves `finish` unmaps, so no leak and no
/// waiver needed.
pub fn helper_roundtrip(engine: &E, ctx: &mut C) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    finish(engine, ctx, m);
}

/// The handle comes back from `make_rx`, dies inside `finish`, and is
/// then projected: use-after-unmap across two helper calls.
pub fn use_after_helper_unmap(engine: &E, ctx: &mut C) {
    let m = make_rx(engine, ctx);
    finish(engine, ctx, m);
    fire(m.iova.get());
}

/// Device-tainted index used raw: `data` comes off a device-writable
/// buffer, flows into `idx`, and indexes `table` without a bounds check.
pub fn taint_to_index(engine: &E, mem: &M, ctx: &mut C, table: &mut [u64]) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 64), DmaDirection::FromDevice)
        .expect("map");
    engine.sync_for_cpu(ctx, &m);
    let data = mem.read_vec(pkt, 64).expect("read");
    let idx = data[0] as usize;
    table[idx] = 1;
    engine.unmap(ctx, m).expect("unmap");
}

/// Clean control: the comparison guards the tainted index, so the taint
/// pass stays quiet.
pub fn taint_bounds_checked(engine: &E, mem: &M, ctx: &mut C, table: &mut [u64]) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 64), DmaDirection::FromDevice)
        .expect("map");
    engine.sync_for_cpu(ctx, &m);
    let data = mem.read_vec(pkt, 64).expect("read");
    let idx = data[0] as usize;
    if idx < table.len() {
        table[idx] = 1;
    }
    engine.unmap(ctx, m).expect("unmap");
}

/// The closure capture is an escape *note*, not a violation: the handle
/// leaves the lattice declared, and the closure becomes an anonymous
/// call-graph node.
pub fn defer_unmap(engine: &E, ctx: &mut C, defer: &mut Defer) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    defer.push(move || engine.unmap(ctx, m).expect("deferred unmap"));
}
