//! Planted fixture source: trips every source-level lint rule exactly
//! where `tests/lint.rs` expects. Never compiled.

pub mod interproc;
pub mod protocol;

use std::fs;
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn leak_to_disk(data: &[u8]) {
    fs::write("/tmp/leak", data).unwrap();
}

pub fn forge_address(base: u64, idx: u64) -> PhysAddr {
    PhysAddr(base + idx * 4096)
}

pub fn risky(v: Option<u32>) -> u32 {
    v.expect("fixture panic")
}

pub fn sloppy_count(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_region() {
        // unwrap inside #[cfg(test)] must NOT be reported.
        Some(1u32).unwrap();
    }
}
