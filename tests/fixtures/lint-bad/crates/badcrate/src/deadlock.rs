//! Planted lock-order cycle: `fixture-a` and `fixture-b` are nested in
//! both orders, which the lock-order pass must flag exactly once. Never
//! compiled.

use simcore::{CoreCtx, SimLock};

const LOCK_A: &str = "fixture-a";
const LOCK_B: &str = "fixture-b";

pub struct Tangle {
    a: SimLock,
    b: SimLock,
}

impl Tangle {
    pub fn new() -> Self {
        Tangle {
            a: SimLock::new(LOCK_A),
            b: SimLock::new(LOCK_B),
        }
    }

    pub fn forward(&self, ctx: &mut CoreCtx) {
        self.a.with(ctx, |ctx| {
            self.b.with(ctx, |_ctx| {});
        });
    }

    pub fn backward(&self, ctx: &mut CoreCtx) {
        self.b.with(ctx, |ctx| {
            self.a.with(ctx, |_ctx| {});
        });
    }
}
