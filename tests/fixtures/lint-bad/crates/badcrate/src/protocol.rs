//! Planted DMA-API protocol fixture: each function trips exactly one
//! typestate (or unsafe-audit) rule where `tests/lint.rs` expects, with
//! one clean control per rule family. Never compiled.

// lint: allow(panic) — fixture bodies use expect() to keep the planted statements one-liners

/// Projects the handle after `dma_unmap`: the IOVA is stale
/// (static mirror of dmasan `stale_access`).
pub fn use_after_unmap(engine: &E, ctx: &mut C) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    engine.unmap(ctx, m).expect("unmap");
    fire(m.iova.get());
}

/// The early `return` leaves the mapping live (dmasan `leak`).
pub fn leak_on_early_return(engine: &E, ctx: &mut C, bad: bool) -> Result<(), DmaError> {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    if bad {
        return Err(DmaError::Exhausted);
    }
    engine.unmap(ctx, m).expect("unmap");
    Ok(())
}

/// The `?` error edge of `refill_ring` leaves the mapping live
/// (dmasan `leak`).
pub fn leak_via_question(engine: &E, ctx: &mut C) -> Result<(), DmaError> {
    let m = engine.map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::FromDevice)?;
    refill_ring(ctx)?;
    engine.unmap(ctx, m)?;
    Ok(())
}

/// Unmapped on the `early` path, then unconditionally unmapped again
/// (dmasan `double_unmap`).
pub fn double_unmap(engine: &E, ctx: &mut C, early: bool) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::ToDevice)
        .expect("map");
    if early {
        engine.unmap(ctx, m).expect("first");
    }
    engine.unmap(ctx, m).expect("second");
}

/// CPU read of a device-writable streaming buffer while it is still
/// mapped and un-synced. dmasan has no runtime mirror: it observes bus
/// accesses, not CPU loads.
pub fn read_without_sync(engine: &E, mem: &M, ctx: &mut C) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::FromDevice)
        .expect("map");
    let got = mem.read_vec(pkt, 1500).expect("read");
    engine.unmap(ctx, m).expect("unmap");
}

/// Clean control: the `sync_for_cpu` handoff makes the read legal.
pub fn read_with_sync(engine: &E, mem: &M, ctx: &mut C) {
    let m = engine
        .map(ctx, DmaBuf::new(pkt, 1500), DmaDirection::FromDevice)
        .expect("map");
    engine.sync_for_cpu(ctx, &m);
    let got = mem.read_vec(pkt, 1500).expect("read");
    engine.unmap(ctx, m).expect("unmap");
}

/// An `unsafe` block with no `// SAFETY:` justification.
pub fn poke_raw(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}

/// Clean control: the justification satisfies the audit.
pub fn poke_documented(p: *mut u8) {
    // SAFETY: fixture pointer is valid for writes by construction.
    unsafe {
        *p = 1;
    }
}
