//! End-to-end data-integrity tests across the whole stack: every engine,
//! both directions, many sizes, through the real NIC descriptor path.

use dma_shadowing::devices::MTU;
use dma_shadowing::netsim::{CoreDriver, EngineKind, ExpConfig, SimStack};
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::Arc;

fn ctx() -> CoreCtx {
    let mut c = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
    c.seek(Cycles(1));
    c
}

#[test]
fn rx_payload_sizes_roundtrip_every_engine() {
    for kind in EngineKind::ALL {
        let stack = SimStack::new(kind, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx();
        for len in [16usize, 60, 64, 300, 1000, 1499, MTU] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 13 + len) as u8).collect();
            let delivered = drv.rx_one(&stack, &mut c, &payload, true);
            assert_eq!(delivered, len, "{kind} len {len}");
        }
        // Nothing leaked: the slab is empty again.
        assert_eq!(stack.kmalloc.stats().live, 0, "{kind}");
    }
}

#[test]
fn tx_payload_sizes_roundtrip_every_engine() {
    for kind in EngineKind::ALL {
        let stack = SimStack::new(kind, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx();
        for len in [16usize, MTU, MTU + 1, 4096, 10_000, 64 * 1024] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + len) as u8).collect();
            let (sent, frames) = drv.tx_one(&stack, &mut c, &payload, true);
            assert_eq!(sent, len, "{kind} len {len}");
            assert_eq!(frames, len.div_ceil(MTU), "{kind} len {len}");
        }
        assert_eq!(stack.kmalloc.stats().live, 0, "{kind}");
    }
}

#[test]
fn many_packets_with_buffer_churn() {
    // Interleave RX and TX with slab reuse for thousands of iterations; any
    // mapping-accounting bug (double release, stale association, IOVA
    // collision) surfaces as corruption or a panic.
    for kind in [
        EngineKind::Copy,
        EngineKind::IdentityMinus,
        EngineKind::LinuxDefer,
    ] {
        let stack = SimStack::new(kind, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx();
        for i in 0..3_000u64 {
            let len = 64 + (i as usize * 37) % (MTU - 64);
            let mut payload = vec![0u8; len];
            payload[..8].copy_from_slice(&i.to_le_bytes());
            if i % 3 == 0 {
                drv.tx_one(&stack, &mut c, &payload, true);
            } else {
                drv.rx_one(&stack, &mut c, &payload, true);
            }
        }
        // Deferred engines still owe a final flush; afterwards the
        // IOMMU state is clean.
        stack.engine.flush_deferred(&mut c);
        assert_eq!(stack.kmalloc.stats().live, 0);
    }
}

#[test]
fn multi_core_rings_are_independent() {
    let cfg = ExpConfig {
        cores: 4,
        ..ExpConfig::quick()
    };
    let stack = SimStack::new(EngineKind::Copy, &cfg);
    let mut ctxs: Vec<CoreCtx> = (0..4)
        .map(|i| {
            let mut c = CoreCtx::new(CoreId(i), Arc::new(CostModel::haswell_2_4ghz()));
            c.seek(Cycles(1));
            c
        })
        .collect();
    for round in 0..50u8 {
        for core in 0..4u16 {
            let drv = CoreDriver::new(CoreId(core));
            let payload = vec![core as u8 ^ round; 500];
            let n = drv.rx_one(&stack, &mut ctxs[core as usize], &payload, true);
            assert_eq!(n, 500);
        }
    }
}

#[test]
fn loopback_smoke_for_docs() {
    let mut stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
    let payload = vec![0xabu8; 1500];
    assert_eq!(stack.loopback_rx(&payload), payload);
}

#[test]
fn copy_engine_issues_no_datapath_invalidations() {
    let stack = SimStack::new(EngineKind::Copy, &ExpConfig::quick());
    let drv = CoreDriver::new(CoreId(0));
    let mut c = ctx();
    for i in 0..500u64 {
        let mut p = vec![0u8; 1200];
        p[..8].copy_from_slice(&i.to_le_bytes());
        drv.rx_one(&stack, &mut c, &p, true);
        drv.tx_one(&stack, &mut c, &p, true);
    }
    let stats = stack.mmu.invalq().stats();
    assert_eq!(
        stats.page_commands, 0,
        "no page invalidations on the data path"
    );
    assert_eq!(stats.flush_commands, 0, "no flushes either");
}

#[test]
fn strict_engines_invalidate_per_unmap() {
    for kind in [EngineKind::IdentityPlus, EngineKind::LinuxStrict] {
        let stack = SimStack::new(kind, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx();
        for i in 0..100u64 {
            let mut p = vec![0u8; 1200];
            p[..8].copy_from_slice(&i.to_le_bytes());
            drv.rx_one(&stack, &mut c, &p, true);
        }
        assert!(
            stack.mmu.invalq().stats().page_commands >= 100,
            "{kind}: strict = one invalidation per unmap"
        );
    }
}

#[test]
fn scatter_gather_tx_roundtrip_every_engine() {
    // §5.2: SG elements are mapped/copied independently; the NIC gathers
    // the descriptor chain back into one wire payload.
    for kind in EngineKind::ALL {
        let stack = SimStack::new(kind, &ExpConfig::quick());
        let drv = CoreDriver::new(CoreId(0));
        let mut c = ctx();
        for (len, frags) in [(1500usize, 3usize), (9000, 4), (64 * 1024, 16), (100, 7)] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 11 + frags) as u8).collect();
            let (sent, frames) = drv.tx_one_sg(&stack, &mut c, &payload, frags, true);
            assert_eq!(sent, len, "{kind} len {len} frags {frags}");
            assert_eq!(frames, len.div_ceil(MTU), "{kind}");
        }
        assert_eq!(stack.kmalloc.stats().live, 0, "{kind}");
    }
}

#[test]
fn scatter_gather_stream_matches_contiguous_bytes() {
    // The SG TX workload moves the same bytes as the contiguous one (the
    // per-fragment mapping costs differ, the data does not).
    use dma_shadowing::netsim::tcp_stream_tx;
    let base = ExpConfig {
        msg_size: 16 * 1024,
        items_per_core: 500,
        warmup_per_core: 50,
        ..ExpConfig::quick()
    };
    let sg = ExpConfig {
        tx_sg_frags: 4,
        ..base.clone()
    };
    let a = tcp_stream_tx(EngineKind::Copy, &base);
    let b = tcp_stream_tx(EngineKind::Copy, &sg);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.items, b.items);
    // Fragmented mapping costs at least as much management work.
    assert!(b.us_per_item() >= a.us_per_item() * 0.99);
}
