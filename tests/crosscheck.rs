//! Static ↔ dynamic crosscheck: the planted protocol violations in
//! `tests/fixtures/lint-bad/crates/badcrate/src/protocol.rs` and
//! `interproc.rs` are replayed here as the equivalent runtime event
//! sequences against the DMA sanitizer, pinning the correspondence
//! between the static typestate rules and dmasan's runtime rules:
//!
//! | static rule            | dmasan rule    |
//! |------------------------|----------------|
//! | `use-after-unmap`      | `stale_access` |
//! | `leak-on-exit`         | `leak`         |
//! | `double-unmap`         | `double_unmap` |
//! | `sync-before-cpu-read` | *(none)*       |
//! | `device-taint`         | *(none)*       |
//!
//! The last rows are the documented precision gaps (the paper's §5.2
//! `StaleAccess` discussion applies in reverse): the sanitizer observes
//! device-side bus accesses, so a *CPU* read of an un-synced streaming
//! buffer — or a tainted length steering CPU-side indexing — is invisible
//! at runtime; only the static checker sees those. In the other
//! direction, the checker is summary-based but still alias-free, so a
//! handle that truly escapes (collections, struct stores, closures it
//! cannot prove safe) is reported as an escape note and covered only by
//! dmasan's teardown check. Helper boundaries are NOT a gap anymore:
//! violations split across calls (mapped in one function, unmapped in
//! another, used in a third) are caught statically and replayed below.

use dma_shadowing::dma_api::{BusObserver, DmaDirection, DmaMapping, DmaObserver};
use dma_shadowing::dmasan::{DmaSan, ViolationKind};
use dma_shadowing::iommu::{DeviceId, Iova};
use dma_shadowing::lint::{lint_workspace, LintViolation};
use dma_shadowing::memsim::PhysAddr;
use dma_shadowing::obs::Obs;
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel};
use std::path::Path;
use std::sync::Arc;

const DEV: DeviceId = DeviceId(0);

fn ctx() -> CoreCtx {
    CoreCtx::new(CoreId(0), Arc::new(CostModel::zero()))
}

fn san() -> (DmaSan, CoreCtx) {
    // Lenient so the crosscheck also runs under `--features dmasan-strict`
    // (the violations here are the point, not a test failure).
    (DmaSan::lenient(Obs::isolated()), ctx())
}

fn mapping(iova: u64, len: usize, dir: DmaDirection, os_pa: u64) -> DmaMapping {
    DmaMapping {
        iova: Iova::new(iova),
        len,
        dir,
        os_pa: PhysAddr(os_pa),
    }
}

/// The static findings from the planted fixture, by protocol rule.
fn static_count(rule: &str) -> usize {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint-bad");
    let violations: Vec<LintViolation> = lint_workspace(&fixture).expect("scan fixture");
    violations.iter().filter(|v| v.rule == rule).count()
}

/// `protocol.rs::use_after_unmap` and
/// `interproc.rs::use_after_helper_unmap` — both project `m.iova` after
/// `dma_unmap`; the runtime twin is the device using that stale IOVA. The
/// interprocedural variant is the same event sequence even though no
/// single fixture function contains it: the map happens inside `make_rx`,
/// the unmap inside `finish`, and the stale projection in the caller.
#[test]
fn use_after_unmap_replays_as_stale_access() {
    let (san, ctx) = san();
    let m = mapping(0x1000, 1500, DmaDirection::ToDevice, 0x8000);
    san.on_map(&ctx, DEV, &m, 1);
    san.on_unmap(&ctx, DEV, &m, 2);
    // The device (or, statically, the CPU via the stale handle) touches
    // the retired IOVA and the hardware lets it through.
    san.on_device_access(DEV, 0x1000, 64, false, true);

    // use_after_helper_unmap: `make_rx` maps ...
    let helper = mapping(0x7000, 1500, DmaDirection::FromDevice, 0xe000);
    san.on_map(&ctx, DEV, &helper, 3);
    // ... `finish` unmaps (the summary's `must_unmap` parameter) ...
    san.on_unmap(&ctx, DEV, &helper, 4);
    // ... and the caller fires on the handle it still holds.
    san.on_device_access(DEV, 0x7000, 64, false, true);

    assert_eq!(san.count_of(ViolationKind::StaleAccess), 2);
    assert_eq!(
        static_count("use-after-unmap"),
        san.count_of(ViolationKind::StaleAccess),
        "static and dynamic checkers must agree on the planted count"
    );
}

/// `protocol.rs::double_unmap` — the `early` path unmaps, then the
/// unconditional unmap fires again.
#[test]
fn double_unmap_replays_identically() {
    let (san, ctx) = san();
    let m = mapping(0x2000, 1500, DmaDirection::ToDevice, 0x9000);
    san.on_map(&ctx, DEV, &m, 1);
    san.on_unmap(&ctx, DEV, &m, 2); // the `if early` arm
    san.on_unmap(&ctx, DEV, &m, 3); // the unconditional unmap
    assert_eq!(san.count_of(ViolationKind::DoubleUnmap), 1);
    assert_eq!(
        static_count("double-unmap"),
        san.count_of(ViolationKind::DoubleUnmap)
    );
}

/// `protocol.rs::{leak_on_early_return, leak_via_question}` — both exits
/// leave the mapping live; dmasan sees them at teardown.
#[test]
fn leaks_replay_as_teardown_leaks() {
    let (san, ctx) = san();
    // leak_on_early_return: map, take the `return Err` path.
    san.on_map(
        &ctx,
        DEV,
        &mapping(0x3000, 1500, DmaDirection::ToDevice, 0xa000),
        1,
    );
    // leak_via_question: map, take `refill_ring(ctx)?`'s error edge.
    san.on_map(
        &ctx,
        DEV,
        &mapping(0x4000, 1500, DmaDirection::FromDevice, 0xb000),
        2,
    );
    // interproc.rs::leak_across_helper: map, call `touch_stats` — whose
    // summary proves it only *reads* the handle — and fall off the end.
    // At runtime the helper call is invisible; only the missing unmap is.
    san.on_map(
        &ctx,
        DEV,
        &mapping(0x5000, 1500, DmaDirection::ToDevice, 0xb800),
        3,
    );
    assert_eq!(san.check_teardown(), 3);
    assert_eq!(san.count_of(ViolationKind::Leak), 3);
    assert_eq!(
        static_count("leak-on-exit"),
        san.count_of(ViolationKind::Leak)
    );
}

/// `protocol.rs::read_without_sync` — the documented precision gap: the
/// CPU read of the mapped, un-synced `FromDevice` buffer is invisible to
/// dmasan (no bus access happens), so the replay is *clean* at runtime
/// while the static checker flags it.
#[test]
fn sync_before_cpu_read_has_no_runtime_mirror() {
    let (san, ctx) = san();
    let m = mapping(0x5000, 1500, DmaDirection::FromDevice, 0xc000);
    san.on_map(&ctx, DEV, &m, 1);
    // CPU-side `mem.read_vec(pkt, 1500)` happens here: no observer hook
    // exists for it, by construction.
    san.on_unmap(&ctx, DEV, &m, 2);
    assert_eq!(san.check_teardown(), 0);
    assert!(san.violations().is_empty(), "{:?}", san.violations());
    // The static side still catches it — that is the whole point of
    // having both checkers.
    assert_eq!(static_count("sync-before-cpu-read"), 1);
}

/// `interproc.rs::helper_roundtrip` — the clean interprocedural control:
/// the caller maps, `finish` unmaps. Statically the helper's `must_unmap`
/// summary discharges the obligation (no waiver involved); dynamically the
/// unmap event simply arrives from a different stack frame, which dmasan
/// never cared about in the first place. Silent in both checkers.
#[test]
fn summary_proven_helper_roundtrip_is_silent_in_both_checkers() {
    let (san, ctx) = san();
    let m = mapping(0x8000, 1500, DmaDirection::ToDevice, 0xf000);
    san.on_map(&ctx, DEV, &m, 1); // caller: engine.map(...)
    san.on_unmap(&ctx, DEV, &m, 2); // inside finish(engine, ctx, m)
    assert_eq!(san.check_teardown(), 0);
    assert!(san.violations().is_empty(), "{:?}", san.violations());
}

/// `protocol.rs::read_with_sync` (and every clean control): the canonical
/// map → sync → read → unmap sequence is silent in both checkers.
#[test]
fn clean_sequences_are_silent_in_both_checkers() {
    let (san, ctx) = san();
    let m = mapping(0x6000, 1500, DmaDirection::FromDevice, 0xd000);
    san.on_map(&ctx, DEV, &m, 1);
    san.on_device_access(DEV, 0x6000, 1500, true, true); // device fills it
    san.on_unmap(&ctx, DEV, &m, 2);
    assert_eq!(san.check_teardown(), 0);
    assert!(san.violations().is_empty(), "{:?}", san.violations());
}
