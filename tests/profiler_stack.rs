//! Cross-crate acceptance tests for the virtual-time profiler and the
//! flight recorder: the whole netsim stack runs with the profiler
//! enabled, and the resulting tree must agree cycle-for-cycle with the
//! registry's Figure 5 breakdown; a security event must leave a flight
//! dump whose every line re-parses.

// lint: allow(ambient-io) — this test reads back the flight recorder's on-disk dump

use dma_shadowing::netsim::{tcp_stream_rx_on, EngineKind, ExpConfig, SimStack, NIC_DEV};
use dma_shadowing::obs::json::Json;
use dma_shadowing::obs::profile::{chrome_trace, flamegraph, validate_chrome_trace};
use dma_shadowing::obs::sink::{event_from_json, parse_jsonl};
use dma_shadowing::obs::{breakdown, flight, Obs};
use dma_shadowing::simcore::Phase;

fn quick_cfg() -> ExpConfig {
    ExpConfig {
        cores: 2,
        msg_size: 64 * 1024,
        items_per_core: 300,
        warmup_per_core: 40,
        ..ExpConfig::quick()
    }
}

#[test]
fn profile_depth1_cut_is_byte_identical_to_breakdown() {
    // The RX deliver block and the deferred flusher burst-charge
    // (`CoreCtx::charge_batch`), so LinuxDefer here asserts the depth-1
    // cut stays cycle-identical with attribution committed per burst
    // rather than per charge.
    let obs = Obs::with_trace_capacity(1 << 14);
    obs.profiler().set_enabled(true);
    let cfg = quick_cfg();
    for kind in [
        EngineKind::Copy,
        EngineKind::IdentityPlus,
        EngineKind::LinuxDefer,
    ] {
        let stack = SimStack::with_obs(kind, &cfg, obs.clone());
        tcp_stream_rx_on(&stack, &cfg);
    }
    let merged = breakdown::breakdown_view(obs.registry(), Some(NIC_DEV.0));
    let cut = obs.profiler().snapshot().breakdown_cut(Some(NIC_DEV.0));
    for p in Phase::ALL {
        assert_eq!(cut.get(p), merged.get(p), "phase '{}'", p.label());
    }
    // Each engine left a distinct tree.
    let engines = obs.profiler().snapshot().engines();
    assert!(engines.contains(&"copy".to_string()), "{engines:?}");
    assert!(engines.contains(&"identity+".to_string()), "{engines:?}");
    assert!(engines.contains(&"defer".to_string()), "{engines:?}");
}

#[test]
fn exporters_render_the_real_stack() {
    let obs = Obs::with_trace_capacity(1 << 14);
    obs.profiler().set_enabled(true);
    obs.profiler().set_span_log(true);
    let cfg = quick_cfg();
    let stack = SimStack::with_obs(EngineKind::IdentityPlus, &cfg, obs.clone());
    tcp_stream_rx_on(&stack, &cfg);

    // Flamegraph: strict zero-copy spends its invalidation cycles under
    // rx -> dma_unmap -> invalq_drain, with the phase as the leaf frame.
    let collapsed = flamegraph(&obs.profiler().snapshot());
    assert!(
        collapsed
            .lines()
            .any(|l| l.starts_with("identity+;rx;dma_unmap;invalq_drain;invalidate_iotlb ")),
        "expected the invalidation stack in:\n{collapsed}"
    );

    // Chrome trace: valid JSON, every B matched by an E.
    let trace = chrome_trace(&obs.profiler().spans(), cfg.cost.clock_ghz);
    let reparsed = Json::parse(&trace.encode()).expect("trace encodes to valid JSON");
    let pairs = validate_chrome_trace(&reparsed).expect("B/E events match");
    assert!(pairs > 0, "the span log captured real scopes");
}

#[test]
fn security_event_dump_replays_through_the_parsers() {
    use dma_shadowing::devices::MaliciousDevice;
    use dma_shadowing::dma_api::Bus;
    use dma_shadowing::iommu::DeviceId;

    let obs = Obs::with_trace_capacity(1 << 14);
    obs.profiler().set_enabled(true);
    let cfg = quick_cfg();
    let stack = SimStack::with_obs(EngineKind::Copy, &cfg, obs.clone());
    tcp_stream_rx_on(&stack, &cfg);

    // Arm, then probe from a rogue device: every blocked DMA is a
    // security event, and the first one triggers a dump.
    let dir = std::path::Path::new("target").join("flight-stack-test");
    let _ = std::fs::remove_dir_all(&dir);
    obs.flight().arm(&dir, 64);
    obs.flight().set_max_dumps(1);
    let evil = MaliciousDevice::new(
        DeviceId(13),
        Bus::Iommu {
            mmu: stack.mmu.clone(),
            mem: stack.mem.clone(),
        },
    );
    let scan = evil.scan(0, 8 * 4096, 4096);
    assert!(scan.blocked > 0, "the IOMMU blocked the rogue probes");
    assert_eq!(obs.flight().dumps(), 1, "one dump, budget respected");

    // The dump replays: run header, metrics, profile tree, events.
    let dump = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .expect("dump file written");
    let text = std::fs::read_to_string(dump.path()).expect("dump readable");
    let lines = parse_jsonl(&text).expect("every dump line is valid JSON");
    let header = &lines[0];
    assert_eq!(header.get("kind").and_then(Json::as_str), Some("flight"));
    assert_eq!(
        header.get("reason").and_then(Json::as_str),
        Some("AttackBlocked")
    );
    let events: Vec<_> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("event"))
        .map(|l| event_from_json(l).expect("event decodes"))
        .collect();
    assert!(!events.is_empty(), "the dump carries the last-N events");
    let profile_lines: Vec<Json> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("profile"))
        .cloned()
        .collect();
    let snap = dma_shadowing::obs::profile::ProfileSnapshot::from_json_lines(&profile_lines)
        .expect("profile decodes");
    assert!(!snap.is_empty(), "the dump carries the profile tree");
    // Same dump content is available without touching disk.
    let s = flight::dump_string(&obs, "manual", 16);
    assert!(parse_jsonl(&s).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
