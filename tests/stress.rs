//! Heavier stress tests: the shadow pool's real-thread concurrency
//! contract at scale, engine churn under memory pressure, and determinism
//! of the whole simulation.

use dma_shadowing::dma_api::{DmaBuf, DmaError};
use dma_shadowing::iommu::{DeviceId, Iommu, Perms};
use dma_shadowing::memsim::{NumaDomain, NumaTopology, PhysMemory};
use dma_shadowing::netsim::{tcp_stream_rx, EngineKind, ExpConfig};
use dma_shadowing::shadow_core::{PoolConfig, ShadowPool};
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel, Cycles};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DEV: DeviceId = DeviceId(0);

fn zero_ctx(core: u16) -> CoreCtx {
    let mut c = CoreCtx::new(CoreId(core), Arc::new(CostModel::zero()));
    c.seek(Cycles(1));
    c
}

#[test]
fn pool_owner_acquire_remote_release_storm() {
    // 8 threads, each owning one core id: every thread acquires from its
    // own lists and releases buffers acquired by *other* cores, hammering
    // the tail-lock path. Invariant: every acquired IOVA is released
    // exactly once and the pool reconciles.
    let topo = NumaTopology::new(8, 2, 1 << 17);
    let mem = Arc::new(PhysMemory::new(topo));
    let mmu = Arc::new(Iommu::new());
    let pool = Arc::new(ShadowPool::new(
        mem.clone(),
        mmu,
        DEV,
        PoolConfig::default(),
    ));
    let total_released = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..8).map(|_| std::sync::mpsc::channel()).unzip();
        for (core, rx) in (0..8u16).zip(rxs) {
            let pool = pool.clone();
            let mem = mem.clone();
            let next = txs[((core as usize) + 3) % 8].clone();
            let total_released = total_released.clone();
            s.spawn(move || {
                let mut ctx = zero_ctx(core);
                let os = mem
                    .alloc_frames(NumaDomain(core % 2), 1)
                    .expect("os buffer")
                    .base();
                for i in 0..2_000u32 {
                    let len = 100 + (i as usize * 97) % 60_000;
                    let iova = pool
                        .acquire_shadow(&mut ctx, DmaBuf::new(os, len), Perms::Write)
                        .expect("acquire");
                    let sref = pool.find_shadow(iova).expect("live");
                    assert!(sref.size >= len);
                    if next.send(iova).is_err() {
                        pool.release_shadow(&mut ctx, iova).expect("self release");
                        total_released.fetch_add(1, Ordering::Relaxed);
                    }
                    while let Ok(other) = rx.try_recv() {
                        pool.release_shadow(&mut ctx, other)
                            .expect("remote release");
                        total_released.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(next);
                while let Ok(other) = rx.recv() {
                    pool.release_shadow(&mut ctx, other).expect("drain release");
                    total_released.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        drop(txs);
    });

    let s = pool.stats();
    assert_eq!(s.acquires, 8 * 2_000);
    assert_eq!(s.releases, total_released.load(Ordering::Relaxed));
    assert_eq!(s.releases, s.acquires, "every buffer recovered");
    assert_eq!(s.in_flight, 0);
}

#[test]
fn pool_reclaim_under_pressure_keeps_working() {
    let mem = Arc::new(PhysMemory::new(NumaTopology::new(2, 1, 1 << 14)));
    let mmu = Arc::new(Iommu::new());
    let pool = ShadowPool::new(mem.clone(), mmu, DEV, PoolConfig::default());
    let mut ctx = zero_ctx(0);
    let os = mem.alloc_frames(NumaDomain(0), 16).unwrap().base();
    // Cycle: grow the pool, release everything, reclaim, repeat.
    for round in 0..20 {
        let iovas: Vec<_> = (0..64)
            .map(|i| {
                let len = if i % 4 == 0 { 40_000 } else { 1500 };
                pool.acquire_shadow(&mut ctx, DmaBuf::new(os, len), Perms::ReadWrite)
                    .unwrap()
            })
            .collect();
        for iova in iovas {
            pool.release_shadow(&mut ctx, iova).unwrap();
        }
        let freed = pool.reclaim(&mut ctx, CoreId(0), 32);
        assert!(freed > 0, "round {round} reclaimed nothing");
    }
    assert_eq!(pool.stats().in_flight, 0);
    // Memory stayed bounded: reclaim kept returning frames.
    assert!(pool.stats().reclaimed >= 20 * 32 / 2);
}

#[test]
fn pool_exhaustion_is_graceful() {
    // Tiny physical memory: acquisition eventually fails with OOM, not a
    // panic, and releasing makes the pool usable again.
    let mem = Arc::new(PhysMemory::new(NumaTopology::new(1, 1, 64)));
    let mmu = Arc::new(Iommu::new());
    let pool = ShadowPool::new(mem.clone(), mmu, DEV, PoolConfig::default());
    let mut ctx = zero_ctx(0);
    let os = mem.alloc_frames(NumaDomain(0), 1).unwrap().base();
    let mut held = Vec::new();
    let err = loop {
        match pool.acquire_shadow(&mut ctx, DmaBuf::new(os, 4096), Perms::Write) {
            Ok(iova) => held.push(iova),
            Err(e) => break e,
        }
        assert!(held.len() < 100, "should exhaust 64 frames well before 100");
    };
    assert!(matches!(err, DmaError::Mem(_)), "graceful OOM: {err}");
    // Free one and try again.
    pool.release_shadow(&mut ctx, held.pop().unwrap()).unwrap();
    assert!(pool
        .acquire_shadow(&mut ctx, DmaBuf::new(os, 4096), Perms::Write)
        .is_ok());
}

#[test]
fn experiments_are_bit_for_bit_deterministic() {
    let cfg = ExpConfig {
        cores: 4,
        msg_size: 4096,
        items_per_core: 800,
        warmup_per_core: 100,
        ..ExpConfig::default()
    };
    let runs: Vec<_> = (0..3)
        .map(|_| tcp_stream_rx(EngineKind::Copy, &cfg))
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.gbps, runs[0].gbps);
        assert_eq!(r.cpu, runs[0].cpu);
        assert_eq!(r.per_item, runs[0].per_item);
        assert_eq!(r.bytes, runs[0].bytes);
    }
}

#[test]
fn different_seeds_same_performance_different_bytes() {
    // Payload contents must not affect virtual-time results.
    let mk = |seed| ExpConfig {
        seed,
        items_per_core: 500,
        warmup_per_core: 50,
        ..ExpConfig::default()
    };
    let a = tcp_stream_rx(EngineKind::Copy, &mk(1));
    let b = tcp_stream_rx(EngineKind::Copy, &mk(2));
    assert_eq!(a.gbps, b.gbps, "timing independent of payload bytes");
}
