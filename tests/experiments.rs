//! Experiment-shape integration tests: small/fast versions of the paper's
//! figures asserting the qualitative results — who wins, by roughly what
//! factor, where the crossovers fall. The full-size runs live in the
//! `bench` crate; `EXPERIMENTS.md` records paper-vs-measured.

use dma_shadowing::netsim::{
    memcached, tcp_rr, tcp_stream_rx, tcp_stream_tx, EngineKind, ExpConfig,
};
use dma_shadowing::simcore::Phase;

fn cfg(cores: usize, msg: usize) -> ExpConfig {
    ExpConfig {
        cores,
        msg_size: msg,
        items_per_core: if cores > 1 { 1_000 } else { 4_000 },
        warmup_per_core: if cores > 1 { 150 } else { 400 },
        ..ExpConfig::default()
    }
}

#[test]
fn figure3_shape_single_core_rx() {
    // Large messages: no-iommu > copy > identity- >> identity+, with copy
    // within the paper's 0.76x-1x of no-iommu and ~2x identity+.
    let c = cfg(1, 64 * 1024);
    let no = tcp_stream_rx(EngineKind::NoIommu, &c);
    let copy = tcp_stream_rx(EngineKind::Copy, &c);
    let idm = tcp_stream_rx(EngineKind::IdentityMinus, &c);
    let idp = tcp_stream_rx(EngineKind::IdentityPlus, &c);
    assert!(no.gbps > copy.gbps && copy.gbps > idm.gbps && idm.gbps > idp.gbps);
    let rel = copy.gbps / no.gbps;
    assert!((0.70..1.0).contains(&rel), "copy/no-iommu = {rel}");
    let vs_idm = copy.gbps / idm.gbps;
    assert!(
        (1.02..1.35).contains(&vs_idm),
        "copy vs identity- = {vs_idm}"
    );
    let vs_idp = copy.gbps / idp.gbps;
    assert!(vs_idp > 1.6, "copy vs identity+ = {vs_idp}");
}

#[test]
fn figure3_throughput_rises_with_message_size() {
    let small = tcp_stream_rx(EngineKind::NoIommu, &cfg(1, 64));
    let mid = tcp_stream_rx(EngineKind::NoIommu, &cfg(1, 4096));
    let large = tcp_stream_rx(EngineKind::NoIommu, &cfg(1, 64 * 1024));
    assert!(small.gbps < mid.gbps, "{} < {}", small.gbps, mid.gbps);
    assert!(mid.gbps <= large.gbps * 1.05);
    // At 64 B the sender can't even reach 3 Gb/s.
    assert!(small.gbps < 3.0);
}

#[test]
fn figure4_shape_single_core_tx() {
    // TX at 64 KB: copy pays full-buffer copies and is the slowest of the
    // protected designs (the paper's one case where zero-copy wins).
    let c = cfg(1, 64 * 1024);
    let no = tcp_stream_tx(EngineKind::NoIommu, &c);
    let copy = tcp_stream_tx(EngineKind::Copy, &c);
    let idp = tcp_stream_tx(EngineKind::IdentityPlus, &c);
    let idm = tcp_stream_tx(EngineKind::IdentityMinus, &c);
    assert!(
        copy.gbps <= idp.gbps * 1.02,
        "copy {} vs identity+ {}",
        copy.gbps,
        idp.gbps
    );
    assert!(copy.gbps <= idm.gbps * 1.02);
    let rel = copy.gbps / no.gbps;
    assert!((0.6..=1.0).contains(&rel), "copy 10-20% down: {rel}");
    // copy is the only design with a large memcpy share.
    assert!(copy.per_item.get(Phase::Memcpy) > idp.per_item.get(Phase::Memcpy) * 10);
}

#[test]
fn figure6_shape_16core_rx() {
    let c = cfg(16, 64 * 1024);
    let no = tcp_stream_rx(EngineKind::NoIommu, &c);
    let copy = tcp_stream_rx(EngineKind::Copy, &c);
    let idm = tcp_stream_rx(EngineKind::IdentityMinus, &c);
    let idp = tcp_stream_rx(EngineKind::IdentityPlus, &c);
    // Everyone but identity+ reaches (near) line rate.
    for r in [&no, &copy, &idm] {
        assert!(r.gbps > 30.0, "{} only {}", r.engine, r.gbps);
    }
    let collapse = no.gbps / idp.gbps;
    assert!(
        (3.0..12.0).contains(&collapse),
        "identity+ collapse {collapse}"
    );
    // identity+ burns all its CPU, mostly on the invalidation path.
    assert!(idp.cpu > 0.9);
    let iommu_share =
        idp.per_item.fraction(Phase::InvalidateIotlb) + idp.per_item.fraction(Phase::Spinlock);
    assert!(iommu_share > 0.5, "share {iommu_share}");
}

#[test]
fn figure7_shape_16core_tx() {
    // TX at 64 KB, 16 cores: TSO lowers the unmap rate, so identity+
    // closes the gap (the paper: "identity+ eventually manages to drive
    // 40 Gb/s, whereas for RX its throughput remains constant").
    let c = cfg(16, 64 * 1024);
    let no = tcp_stream_tx(EngineKind::NoIommu, &c);
    let copy = tcp_stream_tx(EngineKind::Copy, &c);
    let idp = tcp_stream_tx(EngineKind::IdentityPlus, &c);
    assert!(no.gbps > 30.0);
    assert!(copy.gbps > 25.0, "copy scales on TX too: {}", copy.gbps);
    assert!(
        idp.gbps > no.gbps * 0.5,
        "identity+ TX does much better than its RX: {}",
        idp.gbps
    );
    // And the RX/TX asymmetry itself:
    let idp_rx = tcp_stream_rx(EngineKind::IdentityPlus, &c);
    assert!(idp.gbps > idp_rx.gbps * 2.0, "TSO amortizes invalidations");
}

#[test]
fn figure9_latency_shape() {
    let small = tcp_rr(EngineKind::Copy, &cfg(1, 64));
    let large = tcp_rr(EngineKind::Copy, &cfg(1, 64 * 1024));
    let (ls, ll) = (small.latency_us.unwrap(), large.latency_us.unwrap());
    // 1024x the bytes, only a few times the latency.
    let ratio = ll / ls;
    assert!((2.0..12.0).contains(&ratio), "latency ratio {ratio}");
    // All designs comparable at each size.
    for kind in EngineKind::FIGURE_SET {
        let l = tcp_rr(kind, &cfg(1, 1024)).latency_us.unwrap();
        let base = tcp_rr(EngineKind::NoIommu, &cfg(1, 1024))
            .latency_us
            .unwrap();
        assert!(l / base < 1.3, "{kind}: {l} vs {base}");
    }
}

#[test]
fn figure11_memcached_shape() {
    let c = ExpConfig {
        cores: 16,
        msg_size: 1024,
        items_per_core: 600,
        warmup_per_core: 80,
        ..ExpConfig::default()
    };
    let no = memcached(EngineKind::NoIommu, &c);
    let copy = memcached(EngineKind::Copy, &c);
    let idp = memcached(EngineKind::IdentityPlus, &c);
    let t = |r: &dma_shadowing::netsim::ExpResult| r.transactions_per_sec.unwrap();
    // copy ~ no-iommu (the paper: <2% overhead; we allow a bit more).
    assert!(t(&copy) / t(&no) > 0.92);
    // identity+ is several-fold worse (paper: 6.6x).
    let collapse = t(&no) / t(&idp);
    assert!(
        (3.0..12.0).contains(&collapse),
        "memcached collapse {collapse}"
    );
}

#[test]
fn figure5_breakdown_calibration() {
    // The headline per-packet numbers of Figure 5a (single-core RX):
    // copy: ~0.02 us pool mgmt + ~0.11 us memcpy; identity+: ~0.61 us
    // invalidation + ~0.17 us page-table work.
    let c = cfg(1, 64 * 1024);
    let copy = tcp_stream_rx(EngineKind::Copy, &c);
    let idp = tcp_stream_rx(EngineKind::IdentityPlus, &c);
    let us =
        |r: &dma_shadowing::netsim::ExpResult, p: Phase| r.per_item.get(p).to_micros(r.clock_ghz);
    assert!((us(&copy, Phase::Memcpy) - 0.11).abs() < 0.03);
    assert!((us(&copy, Phase::CopyMgmt) - 0.02).abs() < 0.015);
    assert!((us(&idp, Phase::InvalidateIotlb) - 0.61).abs() < 0.15);
    assert!((us(&idp, Phase::IommuPageTableMgmt) - 0.17).abs() < 0.05);
    // And the 5.5x claim: copying 1500 B beats an invalidation by ~5x.
    let ratio = us(&idp, Phase::InvalidateIotlb) / us(&copy, Phase::Memcpy);
    assert!((4.0..8.0).contains(&ratio), "inval/copy ratio {ratio}");
}

#[test]
fn strict_baselines_are_worst() {
    // Figure 1: stock-Linux strict is the slowest design at both scales.
    for cores in [1usize, 16] {
        let c = cfg(cores, 1500);
        let strict = tcp_stream_rx(EngineKind::LinuxStrict, &c);
        for other in [
            EngineKind::NoIommu,
            EngineKind::Copy,
            EngineKind::IdentityMinus,
        ] {
            let r = tcp_stream_rx(other, &c);
            assert!(
                strict.gbps <= r.gbps,
                "{cores} cores: strict {} vs {} {}",
                strict.gbps,
                other,
                r.gbps
            );
        }
    }
}

#[test]
fn self_invalidating_hardware_matches_best_software() {
    // The §7 ablation engine: strict page protection at ~identity- cost.
    let c = cfg(16, 64 * 1024);
    let hw = tcp_stream_rx(EngineKind::SelfInvalHw, &c);
    let idm = tcp_stream_rx(EngineKind::IdentityMinus, &c);
    assert!(hw.gbps >= idm.gbps * 0.95, "{} vs {}", hw.gbps, idm.gbps);
    assert_eq!(hw.per_item.get(Phase::InvalidateIotlb).get(), 0);
}
