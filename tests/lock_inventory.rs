//! Cross-layer check: the lint pass's *static* lock-site inventory must
//! cover every lock the bounded model checker *observes at runtime*. A
//! lock the checker schedules around but the static pass cannot see would
//! make the lock-order analysis silently incomplete — this test makes
//! that drift a failure.

use dma_shadowing::lint::lock_order_analysis;
use modelcheck::{explore, Config, Strategy};
use std::path::Path;

#[test]
fn static_inventory_covers_model_checker_runtime_locks() {
    let report = lock_order_analysis(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("scan workspace lock sites");
    let names = report.lock_names();
    assert!(!names.is_empty(), "static lock inventory came back empty");
    // The per-core configuration's locks must be in the static map before
    // any percore run is checked against it.
    for percore_lock in [
        "pool-magazine",
        "invalq-pending-ring",
        "scalable-iova-shared",
    ] {
        assert!(
            names.iter().any(|n| n == percore_lock),
            "static inventory {names:?} is missing `{percore_lock}`"
        );
    }
    // Copy exercises the pool locks; linux-deferred exercises the IOVA
    // allocator, the deferred flush list, and the invalidation queue. The
    // percore variants add the magazine, pending-ring, and shared-pool
    // locks to the runtime set.
    for (strategy, percore) in [
        (Strategy::Copy, false),
        (Strategy::LinuxDeferred, false),
        (Strategy::Copy, true),
        (Strategy::LinuxStrict, true),
    ] {
        let mut cfg = Config::new(strategy);
        cfg.known_locks = Some(names.clone());
        cfg.percore = percore;
        let r = explore(&cfg);
        assert!(
            r.exhausted,
            "{strategy} (percore={percore}): bounded space not covered"
        );
        assert!(
            r.unknown_locks.is_empty(),
            "{strategy} (percore={percore}): runtime locks missing from the \
             static inventory {names:?}: {:?}",
            r.unknown_locks
        );
    }
}
