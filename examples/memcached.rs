//! A memcached-style server under DMA attack and under load.
//!
//! Runs the Figure 11 workload (16 memcached instances, memslap-style
//! 90/10 GET/SET with 1 KB values) on two machines — one protected by DMA
//! shadowing, one with the IOMMU disabled — and then shows what a
//! compromised NIC can do to each while they serve traffic.
//!
//! Run with: `cargo run --release --example memcached`

use dma_shadowing::attacks::{arbitrary_memory_probe, sub_page_theft};
use dma_shadowing::netsim::{memcached, EngineKind, ExpConfig};

fn main() {
    let cfg = ExpConfig {
        cores: 16,
        msg_size: 1024,
        items_per_core: 4_000,
        warmup_per_core: 400,
        ..ExpConfig::default()
    };

    println!("serving memslap load on 16 cores (90% GET / 10% SET, 1 KB values)...\n");
    println!(
        "{:<12} {:>10} {:>8} {:>12}",
        "engine", "Mtx/s", "cpu%", "vs no-iommu"
    );
    let base = memcached(EngineKind::NoIommu, &cfg);
    let base_tps = base.transactions_per_sec.expect("tps");
    for kind in [
        EngineKind::NoIommu,
        EngineKind::Copy,
        EngineKind::IdentityMinus,
        EngineKind::IdentityPlus,
    ] {
        let r = if kind == EngineKind::NoIommu {
            base.clone()
        } else {
            memcached(kind, &cfg)
        };
        let tps = r.transactions_per_sec.expect("tps");
        println!(
            "{:<12} {:>10.2} {:>8.1} {:>11.0}%",
            r.engine,
            tps / 1e6,
            r.cpu * 100.0,
            tps / base_tps * 100.0
        );
    }

    println!("\nmeanwhile, the NIC firmware turns malicious...");
    for kind in [EngineKind::NoIommu, EngineKind::Copy] {
        let probe = arbitrary_memory_probe(kind);
        let theft = sub_page_theft(kind);
        println!("-- {} --", kind.name());
        println!("   {probe}");
        println!("   {theft}");
    }
    println!("\nDMA shadowing served ~96% of unprotected throughput while blocking both attacks.");
}
