//! Telemetry walk-through: runs netperf-style workloads with the whole
//! stack reporting into one shared [`obs::Obs`] handle, then emits
//!
//! 1. the paper's Figure 5 per-phase packet-time breakdown, reconstructed
//!    from the live registry (all 8 phase categories),
//! 2. the metric table (`subsystem.name{device}` rows), and
//! 3. a JSON-lines trajectory file (`BENCH_*.json` schema) in which every
//!    `DmaMap` has a matching `DmaUnmap` and every blocked probe from a
//!    malicious device appears as an `AttackBlocked` event — both
//!    properties are re-verified here by parsing the file back, and
//! 4. the virtual-time profile tree (the Figure 5 breakdown refined into
//!    per-scope self/total time), whose depth-1 cut must agree with the
//!    registry breakdown cycle-for-cycle.
//!
//! Run with: `cargo run --release --example telemetry_report`

use dma_shadowing::devices::MaliciousDevice;
use dma_shadowing::dma_api::Bus;
use dma_shadowing::iommu::DeviceId;
use dma_shadowing::netsim::{
    tcp_stream_rx_on, EngineKind, ExpConfig, ExpResult, SimStack, NIC_DEV,
};
use dma_shadowing::obs::json::Json;
use dma_shadowing::obs::sink::{event_from_json, export_jsonl, parse_jsonl, render_table};
use dma_shadowing::obs::trace::EventKind;
use dma_shadowing::obs::{breakdown, Obs};
use dma_shadowing::simcore::Phase;
use std::collections::HashMap;

/// The rogue peripheral's requester id (distinct from the NIC's).
const EVIL_DEV: DeviceId = DeviceId(13);

fn run_workload(kind: EngineKind, obs: &Obs, cfg: &ExpConfig) -> (ExpResult, SimStack) {
    let stack = SimStack::with_obs(kind, cfg, obs.clone());
    let result = tcp_stream_rx_on(&stack, cfg);
    (result, stack)
}

fn main() {
    // One telemetry handle for everything; a large trace ring so the full
    // run fits without wraparound.
    let obs = Obs::with_trace_capacity(1 << 20);
    obs.profiler().set_enabled(true);
    let cfg = ExpConfig {
        cores: 4,
        msg_size: 64 * 1024,
        items_per_core: 400,
        warmup_per_core: 50,
        // This report parses the full trajectory back out of the trace
        // ring, so chain sampling must be off.
        trace_sample: 1,
        ..ExpConfig::default()
    };

    // The Figure 5 comparison set: copy exercises CopyMgmt/Memcpy, the
    // strict zero-copy engine exercises InvalidateIotlb/IommuPageTableMgmt
    // and (multi-core) Spinlock; both exercise RxParsing/CopyUser/Other.
    println!(
        "running tcp_stream_rx: copy ({} cores, {} B messages)...",
        cfg.cores, cfg.msg_size
    );
    let (copy_result, mut copy_stack) = run_workload(EngineKind::Copy, &obs, &cfg);
    println!("running tcp_stream_rx: identity+ (same config)...");
    let (idp_result, mut idp_stack) = run_workload(EngineKind::IdentityPlus, &obs, &cfg);

    // A malicious peripheral probes the copy stack's address space; the
    // IOMMU blocks everything unmapped and traces each blocked DMA.
    let evil = MaliciousDevice::new(
        EVIL_DEV,
        Bus::Iommu {
            mmu: copy_stack.mmu.clone(),
            mem: copy_stack.mem.clone(),
        },
    );
    let scan = evil.scan(0, 64 * 4096, 4096);
    assert!(
        !scan.any_accessible(),
        "the rogue device must see nothing through its own (empty) domain"
    );

    // Tear both stacks down like a driver `remove()` — every RX/TX
    // descriptor ring is explicitly `dma_free_coherent`d — then let the
    // sanitizer audit the whole run: zero leaked mappings, zero
    // violations.
    use dma_shadowing::simcore::{CoreCtx, CoreId};
    let mut ctx = CoreCtx::new(CoreId(0), copy_stack.cost.clone());
    copy_stack.teardown(&mut ctx);
    idp_stack.teardown(&mut ctx);
    for stack in [&copy_stack, &idp_stack] {
        assert_eq!(
            stack.san.check_teardown(),
            0,
            "{}: rings or mappings leaked at teardown",
            stack.kind
        );
        assert_eq!(
            stack.san.violation_count(),
            0,
            "{}: sanitizer violations during the run: {:?}",
            stack.kind,
            stack.san.violations()
        );
    }
    println!("dmasan: teardown clean on both stacks (0 leaks, 0 violations)");

    // ---- (1) Figure 5: per-phase breakdown from the registry ----
    let merged = breakdown::breakdown_view(obs.registry(), Some(NIC_DEV.0));
    let total = merged.total();
    println!("\n=== Figure 5 phase breakdown (copy + identity+, cycles) ===");
    for p in Phase::ALL {
        let c = merged.get(p);
        println!(
            "  {:<22} {:>14}  {:>5.1}%",
            p.label(),
            c.get(),
            100.0 * c.get() as f64 / total.get().max(1) as f64
        );
        assert!(
            c.get() > 0,
            "phase '{}' missing from the merged breakdown",
            p.label()
        );
    }
    println!(
        "\n  copy:      {:>6.2} Gb/s at {:>4.1}% cpu",
        copy_result.gbps,
        copy_result.cpu * 100.0
    );
    println!(
        "  identity+: {:>6.2} Gb/s at {:>4.1}% cpu",
        idp_result.gbps,
        idp_result.cpu * 100.0
    );

    // ---- (2) metric table ----
    let snap = obs.registry().snapshot();
    let trace_stats = obs.tracer().stats();
    println!("\n=== registry ===");
    print!("{}", render_table(&snap, Some(&trace_stats)));

    // ---- (3) JSON-lines trajectory ----
    let events = obs.tracer().events();
    assert_eq!(obs.tracer().dropped(), 0, "trace ring must not wrap");
    let doc = export_jsonl(
        &[
            ("workload", Json::Str("tcp_stream_rx".into())),
            ("engines", Json::Str("copy,identity+".into())),
            ("cores", Json::UInt(cfg.cores as u64)),
            ("msg_size", Json::UInt(cfg.msg_size as u64)),
        ],
        &snap,
        &events,
        &trace_stats,
    );
    let path = std::path::Path::new("target").join("telemetry_report.jsonl");
    std::fs::create_dir_all("target").expect("mkdir target");
    std::fs::write(&path, &doc).expect("write jsonl");

    // Re-verify the acceptance properties from the file itself.
    let lines = parse_jsonl(&doc).expect("jsonl parses");
    let parsed: Vec<_> = lines
        .iter()
        .filter(|l| l.get("type").and_then(Json::as_str) == Some("event"))
        .map(|l| event_from_json(l).expect("event decodes"))
        .collect();
    assert_eq!(parsed.len(), events.len(), "all events exported");

    let mut maps: HashMap<(Option<u16>, u64), i64> = HashMap::new();
    let mut blocked = 0u64;
    let (mut n_maps, mut n_unmaps) = (0u64, 0u64);
    for e in &parsed {
        match &e.kind {
            EventKind::DmaMap { iova, .. } => {
                n_maps += 1;
                *maps.entry((e.device, *iova)).or_insert(0) += 1;
            }
            EventKind::DmaUnmap { iova, .. } => {
                n_unmaps += 1;
                *maps.entry((e.device, *iova)).or_insert(0) -= 1;
            }
            EventKind::AttackBlocked { .. } => blocked += 1,
            _ => {}
        }
    }
    assert_eq!(n_maps, n_unmaps, "every DmaMap has a matching DmaUnmap");
    assert!(
        maps.values().all(|&v| v == 0),
        "map/unmap balance holds per (device, iova)"
    );
    assert_eq!(
        blocked, scan.blocked,
        "every blocked malicious access appears as AttackBlocked"
    );

    println!("\n=== trajectory ===");
    println!("  {} events -> {}", parsed.len(), path.display());
    println!(
        "  {n_maps} DmaMap / {n_unmaps} DmaUnmap (balanced), {blocked} AttackBlocked (all {} probes blocked)",
        scan.blocked
    );

    // ---- (4) profile tree: Figure 5 refined into per-scope time ----
    let prof = obs.profiler().snapshot();
    assert!(!prof.is_empty(), "the profiler was enabled for both runs");
    println!("\n=== profile tree (virtual time) ===");
    print!("{}", prof.render(cfg.cost.clock_ghz));
    // The depth-1 cut of the tree IS the registry breakdown: same cycles,
    // same phases, just attributed to scopes.
    let cut = prof.breakdown_cut(Some(NIC_DEV.0));
    for p in Phase::ALL {
        assert_eq!(
            cut.get(p),
            merged.get(p),
            "profile depth-1 cut disagrees with the registry breakdown on '{}'",
            p.label()
        );
    }
    println!("\n  profile depth-1 cut == registry breakdown (all 8 phases)");
}
