//! DMA attacks, live: runs every attack scenario from the paper against
//! every protection engine and prints the outcome matrix (the executable
//! version of the paper's Table 1).
//!
//! Run with: `cargo run --example dma_attack`

use dma_shadowing::attacks;

fn main() {
    println!("Mounting DMA attacks against every protection engine...\n");
    let rows = attacks::run_matrix();

    println!(
        "{:<12} {:>14} {:>16} {:>22}",
        "engine", "iommu protect", "sub-page protect", "no vulnerability win"
    );
    let mark = |b: bool| if b { "yes" } else { "NO" };
    for row in &rows {
        println!(
            "{:<12} {:>14} {:>16} {:>22}",
            row.engine.name(),
            mark(row.iommu_protection),
            mark(row.sub_page_protect),
            mark(row.no_vulnerability_window)
        );
    }

    println!("\nEvidence:");
    for row in &rows {
        println!("-- {} --", row.engine.name());
        for report in &row.reports {
            println!("   {report}");
        }
    }

    // The punchline: only DMA shadowing blocks everything.
    let secure: Vec<_> = rows
        .iter()
        .filter(|r| r.iommu_protection && r.sub_page_protect && r.no_vulnerability_window)
        .map(|r| r.engine.name())
        .collect();
    println!("\nfully protected engines: {secure:?}");
    assert_eq!(secure, ["copy"], "only DMA shadowing blocks every attack");
}
