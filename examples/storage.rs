//! Storage scenario: an SSD doing 4 KB-block DMA under DMA shadowing, plus
//! the §5.5 huge-buffer hybrid path for a large readahead.
//!
//! SSDs motivate two of the paper's design points: their DMA buffers are
//! at least page-sized (so the 4 KB shadow class fits them exactly), and
//! their IO rate is far below a 40 Gb/s NIC's packet rate (so even huge,
//! hybrid-mapped transfers amortize their one strict invalidation).
//!
//! Run with: `cargo run --example storage`

use dma_shadowing::devices::{Ssd, SSD_BLOCK};
use dma_shadowing::dma_api::{Bus, DmaBuf, DmaDirection, DmaEngine};
use dma_shadowing::iommu::{DeviceId, Iommu};
use dma_shadowing::memsim::{NumaTopology, PhysMemory};
use dma_shadowing::shadow_core::{PoolConfig, ShadowDma};
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel};
use std::sync::Arc;

fn main() {
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(Iommu::new());
    let dev = DeviceId(3);
    let engine = ShadowDma::new(mem.clone(), mmu.clone(), dev, PoolConfig::default());
    let ssd = Ssd::new(
        dev,
        Bus::Iommu {
            mmu: mmu.clone(),
            mem: mem.clone(),
        },
        1 << 20, // 4 GB of blocks
    );
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));
    let domain = mem.topology().domain_of_core(ctx.core);

    // --- write a file's worth of blocks through shadowed DMA ---
    let file: Vec<u8> = (0..8 * SSD_BLOCK).map(|i| (i % 249) as u8).collect();
    let buf_pa = mem
        .alloc_frames(domain, 8)
        .expect("page cache pages")
        .base();
    mem.write(buf_pa, &file).expect("fill page cache");
    let m = engine
        .map(
            &mut ctx,
            DmaBuf::new(buf_pa, file.len()),
            DmaDirection::ToDevice,
        )
        .expect("dma_map");
    ssd.write_blocks(100, m.iova.get(), file.len())
        .expect("SSD write");
    engine.unmap(&mut ctx, m).expect("dma_unmap");
    println!(
        "wrote {} blocks through shadowed DMA",
        file.len() / SSD_BLOCK
    );

    // --- read them back into fresh page-cache pages ---
    let read_pa = mem.alloc_frames(domain, 8).expect("pages").base();
    let m = engine
        .map(
            &mut ctx,
            DmaBuf::new(read_pa, file.len()),
            DmaDirection::FromDevice,
        )
        .expect("dma_map");
    ssd.read_blocks(100, m.iova.get(), file.len())
        .expect("SSD read");
    engine.unmap(&mut ctx, m).expect("dma_unmap");
    assert_eq!(mem.read_vec(read_pa, file.len()).expect("read"), file);
    println!("read-back verified ({} bytes)", file.len());

    // --- a 1 MB readahead takes the §5.5 hybrid path automatically ---
    let big: usize = 1 << 20;
    let big_pa = mem
        .alloc_frames(domain, big as u64 / 4096 + 1)
        .expect("readahead buffer")
        .base()
        .add(512); // deliberately unaligned: head+tail get shadowed
    let busy_before = ctx.busy();
    let m = engine
        .map(&mut ctx, DmaBuf::new(big_pa, big), DmaDirection::FromDevice)
        .expect("dma_map (hybrid)");
    for chunk in 0..(big / (8 * SSD_BLOCK)) {
        ssd.read_blocks(
            100,
            m.iova.get() + (chunk * 8 * SSD_BLOCK) as u64,
            8 * SSD_BLOCK,
        )
        .expect("SSD readahead");
    }
    engine.unmap(&mut ctx, m).expect("dma_unmap (hybrid)");
    let hybrid_busy = ctx.busy() - busy_before;
    let huge = engine.huge().stats();
    println!(
        "1 MB readahead: {} bytes copied via head/tail shadows, {} bytes zero-copy",
        huge.shadowed_bytes, huge.zero_copy_bytes
    );
    println!(
        "hybrid map+unmap busy time: {:.1} us (vs {:.1} us for a full 1 MB copy each way)",
        hybrid_busy.to_micros(ctx.cost.clock_ghz),
        (ctx.cost.memcpy(big, false) * 2).to_micros(ctx.cost.clock_ghz)
    );
    println!(
        "IOTLB invalidations issued (hybrid unmap is strict): {}",
        mmu.invalq().stats().page_commands
    );
}
