//! A miniature `netperf`: runs the TCP_STREAM RX/TX and TCP_RR workloads
//! against a protection engine of your choice and prints the numbers the
//! paper's figures report.
//!
//! Run with: `cargo run --release --example netperf -- [engine] [cores] [msg_size]`
//!   engine   one of: no-iommu copy identity+ identity- strict defer (default copy)
//!   cores    1..=16 (default 1)
//!   msg_size message size in bytes (default 65536)

use dma_shadowing::netsim::{
    format_breakdown_us, tcp_rr, tcp_stream_rx, tcp_stream_tx, EngineKind, ExpConfig,
};

fn parse_engine(s: &str) -> EngineKind {
    match s {
        "no-iommu" | "noiommu" => EngineKind::NoIommu,
        "copy" => EngineKind::Copy,
        "identity+" => EngineKind::IdentityPlus,
        "identity-" => EngineKind::IdentityMinus,
        "strict" => EngineKind::LinuxStrict,
        "defer" => EngineKind::LinuxDefer,
        other => {
            eprintln!("unknown engine {other:?}; using copy");
            EngineKind::Copy
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let engine = parse_engine(&args.next().unwrap_or_else(|| "copy".into()));
    let cores: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .clamp(1, 16);
    let msg_size: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64 * 1024)
        .clamp(16, 64 * 1024);

    let cfg = ExpConfig {
        cores,
        msg_size,
        items_per_core: 10_000,
        warmup_per_core: 1_000,
        ..ExpConfig::default()
    };

    println!(
        "engine={} cores={cores} msg_size={msg_size}B\n",
        engine.name()
    );

    let rx = tcp_stream_rx(engine, &cfg);
    println!(
        "TCP_STREAM RX : {:>7.2} Gb/s  cpu {:>5.1}%  ({} packets)",
        rx.gbps,
        rx.cpu * 100.0,
        rx.items
    );
    println!(
        "                {}",
        format_breakdown_us(&rx.per_item, rx.clock_ghz)
    );

    let tx = tcp_stream_tx(engine, &cfg);
    println!(
        "TCP_STREAM TX : {:>7.2} Gb/s  cpu {:>5.1}%  ({} TSO buffers)",
        tx.gbps,
        tx.cpu * 100.0,
        tx.items
    );
    println!(
        "                {}",
        format_breakdown_us(&tx.per_item, tx.clock_ghz)
    );

    let rr_cfg = ExpConfig {
        cores: 1,
        items_per_core: 2_000,
        warmup_per_core: 200,
        ..cfg
    };
    let rr = tcp_rr(engine, &rr_cfg);
    println!(
        "TCP_RR        : {:>7.1} us round-trip  cpu {:>5.1}%",
        rr.latency_us.expect("rr latency"),
        rr.cpu * 100.0
    );

    if let Some(peak) = rx.shadow_bytes_peak {
        println!(
            "shadow memory : {:.2} MB permanently mapped for the device",
            peak as f64 / (1 << 20) as f64
        );
    }
}
