//! Quickstart: protect a device with DMA shadowing in ~40 lines.
//!
//! Builds a simulated machine, maps an OS buffer for receive through the
//! `copy` (DMA shadowing) engine, lets the NIC DMA a packet, unmaps, and
//! shows that (a) the data arrived intact and (b) the IOMMU never issued a
//! single IOTLB invalidation — the core of the paper's idea.
//!
//! Run with: `cargo run --example quickstart`

use dma_shadowing::dma_api::{Bus, DmaBuf, DmaDirection, DmaEngine};
use dma_shadowing::iommu::{DeviceId, Iommu};
use dma_shadowing::memsim::{Kmalloc, NumaTopology, PhysMemory};
use dma_shadowing::shadow_core::{PoolConfig, ShadowDma};
use dma_shadowing::simcore::{CoreCtx, CoreId, CostModel};
use std::sync::Arc;

fn main() {
    // A machine: physical memory + IOMMU.
    let mem = Arc::new(PhysMemory::new(NumaTopology::dual_socket_haswell()));
    let mmu = Arc::new(Iommu::new());
    let kmalloc = Kmalloc::new(mem.clone());

    // The paper's contribution: the DMA-shadowing engine for device 0.
    let nic = DeviceId(0);
    let engine = ShadowDma::new(mem.clone(), mmu.clone(), nic, PoolConfig::default());

    // A virtual core to run the driver on (costs are charged in virtual
    // cycles of the paper's 2.4 GHz testbed).
    let mut ctx = CoreCtx::new(CoreId(0), Arc::new(CostModel::haswell_2_4ghz()));

    // Driver side: allocate an skb and authorize the upcoming receive DMA.
    let domain = mem.topology().domain_of_core(ctx.core);
    let skb = kmalloc.alloc(1500, domain).expect("skb");
    let mapping = engine
        .map(&mut ctx, DmaBuf::new(skb, 1500), DmaDirection::FromDevice)
        .expect("dma_map");
    println!("mapped OS buffer {skb} at device-visible {}", mapping.iova);

    // Device side: the NIC DMA-writes a packet — it lands in the shadow
    // buffer, never in OS memory.
    let bus = Bus::Iommu {
        mmu: mmu.clone(),
        mem: mem.clone(),
    };
    let packet: Vec<u8> = (0..1500u32).map(|i| (i % 251) as u8).collect();
    bus.write(nic, mapping.iova.get(), &packet)
        .expect("device DMA");

    // Driver side: dma_unmap copies the packet into the OS buffer.
    engine.unmap(&mut ctx, mapping).expect("dma_unmap");
    let delivered = mem.read_vec(skb, 1500).expect("read");
    assert_eq!(delivered, packet, "payload intact end-to-end");

    let inval = mmu.invalq().stats();
    println!(
        "packet delivered intact; IOTLB invalidations issued: {} (that's the point)",
        inval.page_commands + inval.flush_commands
    );
    println!(
        "driver-side cost: {:.2} us ({})",
        ctx.busy().to_micros(ctx.cost.clock_ghz),
        dma_shadowing::netsim::format_breakdown_us(&ctx.breakdown, ctx.cost.clock_ghz)
    );
    kmalloc.free(skb).expect("kfree");
}
