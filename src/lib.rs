//! # DMA Shadowing — umbrella crate
//!
//! Reproduction of *"True IOMMU Protection from DMA Attacks: When Copy Is
//! Faster Than Zero Copy"* (Markuze, Morrison, Tsafrir — ASPLOS 2016).
//!
//! This crate re-exports the whole stack so applications can depend on a
//! single crate:
//!
//! - [`simcore`] — deterministic virtual-time simulation substrate.
//! - [`memsim`] — simulated physical memory, NUMA domains, and kmalloc.
//! - [`iommu`] — the IOMMU model: I/O page tables, IOTLB, invalidation queue.
//! - [`dma_api`] — the OS DMA layer and the zero-copy protection engines.
//! - [`shadow_core`] — **the paper's contribution**: the shadow buffer pool
//!   and the copy-based `ShadowDma` engine.
//! - [`devices`] — simulated NIC / SSD / malicious device.
//! - [`netsim`] — netperf-like and memcached-like workloads.
//! - [`attacks`] — DMA-attack scenarios used to validate Table 1.
//! - [`obs`] — telemetry: metrics registry, event tracer, report sinks.
//! - [`dmasan`] — the DMA-API sanitizer and lockset race detector.
//!
//! It also fronts the workspace's correctness tooling: the [`lint`]
//! crate (style rules, lock-order analysis, the DMA-API protocol
//! typestate checker, and the unsafe audit) and its
//! `cargo run --bin lint` runner.
#![forbid(unsafe_code)]

pub use lint;

pub use attacks;
pub use devices;
pub use dma_api;
pub use dmasan;
pub use iommu;
pub use memsim;
pub use netsim;
pub use obs;
pub use shadow_core;
pub use simcore;
