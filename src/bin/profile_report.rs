//! Virtual-time profile reporter: `cargo run --release --bin profile_report`.
//!
//! Default mode runs the Figure 1 `TCP_STREAM` receive workload with the
//! stack-wide profiler (and its span log) enabled, for every engine in
//! the paper's comparison set, then
//!
//! 1. renders each engine's call tree — the Figure 5 per-phase breakdown
//!    refined into per-scope self/total time — and asserts the tree's
//!    depth-1 cut is cycle-identical to the registry [`Breakdown`],
//! 2. writes `target/profile_fig1.jsonl` (the profile tree, replayable
//!    through `--diff`), `target/profile_fig1.collapsed` (flamegraph
//!    collapsed-stack format, one `engine;scope;...;phase count` line per
//!    stack), and `target/profile_fig1.trace.json` (Chrome trace-event
//!    JSON, loadable in Perfetto / `chrome://tracing`), and
//! 3. re-validates the trace-event file: valid JSON, every `B` matched by
//!    an `E`, timestamps monotone per track.
//!
//! `profile_report --diff <before.jsonl> <after.jsonl>` loads two profile
//! dumps and renders the per-scope delta table instead.

use dma_shadowing::netsim::{tcp_stream_rx_on, EngineKind, ExpConfig, SimStack, NIC_DEV};
use dma_shadowing::obs::json::Json;
use dma_shadowing::obs::profile::{
    chrome_trace, flamegraph, validate_chrome_trace, ProfileSnapshot,
};
use dma_shadowing::obs::sink::parse_jsonl;
use dma_shadowing::obs::Obs;
use dma_shadowing::simcore::Phase;
use std::path::Path;
use std::process::ExitCode;

fn load_profile(path: &str) -> Result<ProfileSnapshot, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines = parse_jsonl(&doc).map_err(|e| format!("{path}: {e}"))?;
    ProfileSnapshot::from_json_lines(&lines).map_err(|e| format!("{path}: {e}"))
}

fn diff(before: &str, after: &str) -> ExitCode {
    let (a, b) = match (load_profile(before), load_profile(after)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("profile_report: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", a.render_diff(&b));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--diff") {
        let (Some(before), Some(after)) = (args.get(2), args.get(3)) else {
            eprintln!("usage: profile_report --diff <before.jsonl> <after.jsonl>");
            return ExitCode::from(2);
        };
        return diff(before, after);
    }

    // The Figure 1 receive workload, profiled for every engine.
    let obs = Obs::with_trace_capacity(1 << 16);
    obs.profiler().set_enabled(true);
    obs.profiler().set_span_log(true);
    let cfg = ExpConfig {
        cores: 2,
        msg_size: 64 * 1024,
        items_per_core: 400,
        warmup_per_core: 50,
        ..ExpConfig::default()
    };
    for kind in EngineKind::ALL {
        println!(
            "running tcp_stream_rx: {} ({} cores, {} B messages)...",
            kind.name(),
            cfg.cores,
            cfg.msg_size
        );
        let stack = SimStack::with_obs(kind, &cfg, obs.clone());
        let r = tcp_stream_rx_on(&stack, &cfg);
        println!("  {:>6.2} Gb/s at {:>4.1}% cpu", r.gbps, r.cpu * 100.0);
    }

    let prof = obs.profiler().snapshot();
    println!("\n{}", prof.render(cfg.cost.clock_ghz));

    // Acceptance: the tree's depth-1 cut IS the Figure 5 breakdown.
    let merged = dma_shadowing::obs::breakdown::breakdown_view(obs.registry(), Some(NIC_DEV.0));
    let cut = prof.breakdown_cut(Some(NIC_DEV.0));
    for p in Phase::ALL {
        assert_eq!(
            cut.get(p),
            merged.get(p),
            "profile depth-1 cut disagrees with the registry breakdown on '{}'",
            p.label()
        );
    }
    println!("profile depth-1 cut == registry breakdown (all 8 phases)");

    // Artifacts.
    let target = Path::new("target");
    if let Err(e) = std::fs::create_dir_all(target) {
        eprintln!("profile_report: mkdir target: {e}");
        return ExitCode::from(2);
    }
    let tree_path = target.join("profile_fig1.jsonl");
    let tree_doc: String = prof
        .to_json_lines()
        .iter()
        .map(|l| l.encode() + "\n")
        .collect();
    let collapsed_path = target.join("profile_fig1.collapsed");
    let collapsed = flamegraph(&prof);
    let trace_path = target.join("profile_fig1.trace.json");
    let spans = obs.profiler().spans();
    let trace = chrome_trace(&spans, cfg.cost.clock_ghz);
    for (path, doc) in [
        (&tree_path, &tree_doc),
        (&collapsed_path, &collapsed),
        (&trace_path, &trace.encode()),
    ] {
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("profile_report: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    // Re-validate the trace-event file from its bytes, like a consumer.
    let reread = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("profile_report: reread {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    };
    let doc = Json::parse(&reread).expect("trace-event file is valid JSON");
    let pairs = validate_chrome_trace(&doc).expect("B/E events match");

    // And the tree file round-trips losslessly.
    let lines = parse_jsonl(&tree_doc).expect("profile jsonl parses");
    let back = ProfileSnapshot::from_json_lines(&lines).expect("profile decodes");
    assert_eq!(
        back.breakdown_cut(Some(NIC_DEV.0)),
        cut,
        "profile JSONL round-trip preserves the tree"
    );

    println!("\nartifacts:");
    println!("  profile tree -> {}", tree_path.display());
    println!(
        "  flamegraph   -> {} ({} stacks)",
        collapsed_path.display(),
        collapsed.lines().count()
    );
    println!(
        "  chrome trace -> {} ({pairs} matched B/E pairs, {} spans dropped)",
        trace_path.display(),
        obs.profiler().span_dropped()
    );
    ExitCode::SUCCESS
}
