// lint: allow(ambient-io) — the runner writes the --json report file
//! Workspace lint runner: `cargo run --bin lint`.
//!
//! Scans every member crate's sources, tests, benches, and manifest for
//! the house rules, the interprocedural DMA-API protocol rules, the
//! device-taint pass, the lock-order pass, the unsafe audit, and stale
//! waivers (see the `lint` crate), prints a per-rule summary, and exits
//! with a CI-friendly code: `0` clean, `1` findings, `2` the scan itself
//! failed (I/O error, missing workspace, blown time budget).
//!
//! Flags:
//! - `--fast` — style + manifest rules only (the quick pre-commit pass);
//!   the protocol, taint, lock-order, unsafe, and dead-waiver passes are
//!   skipped.
//! - `--json <path>` — also write the machine-readable report (findings,
//!   per-rule summary, lock-order and unsafe inventories, call graph,
//!   function summaries, escapes, taint stats) to `path`.
//! - `--budget-ms <n>` — fail (exit 2) if the scan takes longer than `n`
//!   milliseconds of wall clock; keeps the full pass honest in CI.
//! - any other argument — the workspace root (default: this crate's
//!   manifest directory).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lint::{json_report, lock_order_analysis, rule_summary, unsafe_audit_analysis, Pass};

fn main() -> ExitCode {
    let mut pass = Pass::Full;
    let mut json_path: Option<PathBuf> = None;
    let mut budget_ms: Option<u64> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => pass = Pass::Fast,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--budget-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget_ms = Some(n),
                None => {
                    eprintln!("lint: --budget-ms requires a millisecond count");
                    return ExitCode::from(2);
                }
            },
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    let started = Instant::now();

    let report = match lint::lint_workspace_report(&root, pass) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let violations = &report.violations;

    if let Some(path) = &json_path {
        let (locks, unsafes) = match (lock_order_analysis(&root), unsafe_audit_analysis(&root)) {
            (Ok(l), Ok(u)) => (l, u),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("lint: cannot build inventories for {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let doc = json_report(violations, &locks, &unsafes, report.protocol.as_ref());
        if let Err(e) = std::fs::write(path, doc.encode()) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("lint: wrote {}", path.display());
    }

    let elapsed_ms = started.elapsed().as_millis() as u64;
    if let Some(budget) = budget_ms {
        if elapsed_ms > budget {
            eprintln!("lint: blew the time budget: {elapsed_ms}ms > {budget}ms");
            return ExitCode::from(2);
        }
        println!("lint: {elapsed_ms}ms elapsed, within the {budget}ms budget");
    }

    let mode = match pass {
        Pass::Fast => "fast (style rules)",
        Pass::Full => "full (style + protocol + taint + lock-order + unsafe)",
    };
    let summary: Vec<String> = rule_summary(violations)
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    if violations.is_empty() {
        println!("lint[{mode}]: workspace clean ({})", root.display());
        println!("lint[{mode}]: {}", summary.join(", "));
        return ExitCode::SUCCESS;
    }
    for v in violations {
        eprintln!("{v}");
    }
    eprintln!("lint[{mode}]: {} violation(s)", violations.len());
    eprintln!("lint[{mode}]: {}", summary.join(", "));
    ExitCode::from(1)
}
