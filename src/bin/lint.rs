// lint: allow(ambient-io) — the runner writes the --json report file
//! Workspace lint runner: `cargo run --bin lint`.
//!
//! Scans every member crate's sources, tests, benches, and manifest for
//! the house rules, the DMA-API protocol typestate rules, the lock-order
//! pass, and the unsafe audit (see the `lint` crate), prints a per-rule
//! summary, and exits with a CI-friendly code: `0` clean, `1` findings,
//! `2` the scan itself failed (I/O error, missing workspace).
//!
//! Flags:
//! - `--fast` — style + manifest rules only (the quick pre-commit pass);
//!   the protocol, lock-order, and unsafe passes are skipped.
//! - `--json <path>` — also write the machine-readable report (findings,
//!   per-rule summary, lock-order and unsafe inventories) to `path`.
//! - any other argument — the workspace root (default: this crate's
//!   manifest directory).

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{json_report, lock_order_analysis, rule_summary, unsafe_audit_analysis, Pass};

fn main() -> ExitCode {
    let mut pass = Pass::Full;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => pass = Pass::Fast,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));

    let violations = match lint::lint_workspace_pass(&root, pass) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        let (locks, unsafes) = match (lock_order_analysis(&root), unsafe_audit_analysis(&root)) {
            (Ok(l), Ok(u)) => (l, u),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("lint: cannot build inventories for {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let doc = json_report(&violations, &locks, &unsafes);
        if let Err(e) = std::fs::write(path, doc.encode()) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("lint: wrote {}", path.display());
    }

    let mode = match pass {
        Pass::Fast => "fast (style rules)",
        Pass::Full => "full (style + protocol + lock-order + unsafe)",
    };
    let summary: Vec<String> = rule_summary(&violations)
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    if violations.is_empty() {
        println!("lint[{mode}]: workspace clean ({})", root.display());
        println!("lint[{mode}]: {}", summary.join(", "));
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("lint[{mode}]: {} violation(s)", violations.len());
    eprintln!("lint[{mode}]: {}", summary.join(", "));
    ExitCode::from(1)
}
