//! Workspace lint runner: `cargo run --bin lint`.
//!
//! Scans every member crate's sources, tests, benches, and manifest for
//! the house rules (see [`dma_shadowing::lint`]), prints a per-rule
//! summary, and exits with a CI-friendly code: `0` clean, `1` findings,
//! `2` the scan itself failed (I/O error, missing workspace).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    let violations = match dma_shadowing::lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for v in &violations {
        *by_rule.entry(v.rule).or_default() += 1;
    }
    let summary: Vec<String> = by_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    eprintln!(
        "lint: {} violation(s) ({})",
        violations.len(),
        summary.join(", ")
    );
    ExitCode::from(1)
}
