//! Workspace lint runner: `cargo run --bin lint`.
//!
//! Scans every member crate's sources and manifest for the house rules
//! (see [`dma_shadowing::lint`]) and exits non-zero if anything is found
//! — wired into `ci.sh` between the test and clippy passes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    let violations = match dma_shadowing::lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
