//! A pure-std workspace lint (no `syn`, no external dependencies).
//!
//! Enforces the house rules `clippy` cannot express, by scanning the
//! member crates' sources (`crates/*/src/**/*.rs`) and manifests:
//!
//! 1. **No `unwrap()` / `expect(` outside `#[cfg(test)]`** — library code
//!    must propagate errors. Files whose panics are deliberate and
//!    documented opt out with a waiver comment:
//!    `// lint: allow(panic) — <reason>`.
//! 2. **No raw `PhysAddr` arithmetic outside `memsim`** — addresses are
//!    constructed by the memory subsystem; everyone else uses the typed
//!    `PhysAddr::add` / page-frame APIs. Constructing `PhysAddr(expr)`
//!    where `expr` contains arithmetic is flagged.
//! 3. **No `std::process` / `std::net` / `std::fs`** — the simulation is
//!    deterministic and self-contained. Files that *are* a deliberate
//!    outside-world edge (the host-bench harness, report exporters) opt
//!    out with a reasoned waiver comment:
//!    `// lint: allow(ambient-io) — <reason>`. (The umbrella crate's own
//!    `src/` — this lint and its binary — is outside the scan scope: the
//!    lint must read files.)
//! 4. **No external dependencies** — every `Cargo.toml` dependency must be
//!    an in-tree `path`/`workspace` crate, so the workspace builds with no
//!    network access.
//! 5. **No `Ordering::Relaxed` outside `crates/obs`** — the telemetry
//!    counters are the only place relaxed atomics are the right default;
//!    everywhere else the ordering must be argued for in a waiver:
//!    `// lint: allow(relaxed-atomic) — <reason>`.
//! 6. **Consistent lock order** — the pass extracts every instrumented
//!    lock site (`SimLock::new`, `.with(ctx, …)`, `lockset_guarded`,
//!    `with_lockset`) from the member crates, resolves the lock-name
//!    constants, builds the nested-acquisition graph by paren matching the
//!    critical-section closures, and flags any cycle as a `lock-order`
//!    violation. The same site inventory is exported
//!    ([`lock_order_analysis`]) and fed to the bounded model checker's
//!    `known_locks` check, so a lock the checker schedules around can
//!    never be missing from the static map.
//!
//! The scanner strips comments and string/char literals before matching,
//! and tracks `#[cfg(test)]` item spans by brace matching, so doc examples
//! and test modules do not trip the rules. Member crates' `tests/` and
//! `benches/` trees are scanned too, for the ambient-I/O rule only (panic
//! discipline is a library-code concern). Run via `cargo run --bin lint`.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Stable rule name: `panic`, `phys-addr-arith`, `ambient-io`,
    /// `external-dep`, `relaxed-atomic`, `lock-order`.
    pub rule: &'static str,
    /// What was found.
    pub detail: String,
}

impl std::fmt::Display for LintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// The waiver comment a file uses to opt out of the panic rule. A reason
/// is mandatory: `// lint: allow(panic) — deliberate invariant panics`.
pub const PANIC_WAIVER: &str = "// lint: allow(panic)";

/// The waiver comment a file uses to opt out of the ambient-I/O rule. A
/// reason is mandatory:
/// `// lint: allow(ambient-io) — the harness writes BENCH_HOST.json`.
pub const IO_WAIVER: &str = "// lint: allow(ambient-io)";

/// The waiver comment a file uses to opt out of the relaxed-atomic rule.
/// A reason is mandatory — it must say why no ordering is needed:
/// `// lint: allow(relaxed-atomic) — stats counters, never synchronized on`.
pub const RELAXED_WAIVER: &str = "// lint: allow(relaxed-atomic)";

/// Whether `src` contains `waiver` followed by a non-trivial reason.
fn has_waiver(src: &str, waiver: &str) -> bool {
    src.lines().any(|l| {
        let t = l.trim_start();
        t.starts_with(waiver) && t.len() > waiver.len() + 3
    })
}

const FORBIDDEN_MODULES: [&str; 3] = ["std::process", "std::net", "std::fs"];

/// Replaces comments and string/char literals with spaces, preserving
/// newlines and all other structure (so brace matching and line numbers
/// survive). Doc comments — and therefore doctests — are stripped too.
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if is_raw_string_start(&b, i) => {
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // Opening quote.
                out.push_str(&" ".repeat(j + 1 - i));
                i = j + 1;
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                while i < b.len() {
                    if b[i] == '"' && matches_at(&b, i, &closer) {
                        out.push_str(&" ".repeat(closer.len()));
                        i += closer.len();
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < b.len() {
                            out.push(if b[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        continue;
                    }
                    if b[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '\'' if is_char_literal(&b, i) => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn matches_at(b: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| b.get(at + k) == Some(&p))
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, not part of an identifier like `for` or `var`.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && (j > i + 1 || b[i + 1] == '"')
}

fn is_char_literal(b: &[char], i: usize) -> bool {
    // Distinguish 'x' / '\n' char literals from lifetimes ('a, 'static).
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Returns, per line (0-indexed), whether the line belongs to a
/// `#[cfg(test)]` item — computed by brace-matching the item that follows
/// the attribute. Expects *stripped* source.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // The attributed item starts here (possibly on the same line) and
        // runs until its braces balance back to zero — or, for brace-less
        // items (`#[cfg(test)] use …;`), until the terminating semicolon.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && j > i && lines[j].trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Options describing where a source file sits, which determines which
/// rules apply to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// The file belongs to `crates/memsim` (raw address arithmetic is its
    /// job).
    pub in_memsim: bool,
    /// The file is pre-approved as an ambient-I/O edge (callers that
    /// cannot carry a waiver comment); source files normally opt out with
    /// a reasoned [`IO_WAIVER`] comment instead.
    pub io_allowed: bool,
    /// The file belongs to `crates/obs` (relaxed telemetry counters are
    /// its job).
    pub in_obs: bool,
    /// The file lives under a member's `tests/` or `benches/` tree: only
    /// the ambient-I/O rule applies (panic / address / atomic discipline
    /// is a library-code concern).
    pub aux: bool,
}

/// Lints one Rust source file's contents. `label` is used for reporting.
pub fn lint_source(label: &str, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let waived_panics = has_waiver(src, PANIC_WAIVER);
    let waived_io = has_waiver(src, IO_WAIVER);
    let waived_relaxed = has_waiver(src, RELAXED_WAIVER);
    let stripped = strip_code(src);
    let mask = test_region_mask(&stripped);
    for (idx, line) in stripped.lines().enumerate() {
        let in_test = mask.get(idx).copied().unwrap_or(false);
        let lineno = idx + 1;
        if !in_test && !waived_panics && !ctx.aux {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "panic",
                        detail: format!(
                            "`{pat}` outside #[cfg(test)]; propagate the error or add \
                             `{PANIC_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
        if !in_test && !ctx.in_memsim && !ctx.aux {
            if let Some(arg) = phys_addr_ctor_arg(line) {
                if arg.contains(['+', '*']) || arg.contains("<<") || arg.contains(" - ") {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "phys-addr-arith",
                        detail: format!(
                            "raw PhysAddr arithmetic `PhysAddr({arg})` outside memsim; \
                             use PhysAddr::add or page-frame APIs"
                        ),
                    });
                }
            }
        }
        if !ctx.io_allowed && !waived_io {
            for m in FORBIDDEN_MODULES {
                if line.contains(m) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "ambient-io",
                        detail: format!(
                            "`{m}` in simulation code; the stack stays deterministic \
                             and self-contained — deliberate I/O edges add \
                             `{IO_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
        if !in_test
            && !ctx.aux
            && !ctx.in_obs
            && !waived_relaxed
            && line.contains("Ordering::Relaxed")
        {
            out.push(LintViolation {
                file: label.to_string(),
                line: lineno,
                rule: "relaxed-atomic",
                detail: format!(
                    "`Ordering::Relaxed` outside the obs counters; pick an ordering \
                     or argue why none is needed via `{RELAXED_WAIVER} — <reason>`"
                ),
            });
        }
    }
    out
}

/// The argument of a `PhysAddr(...)` constructor on this line, if any.
fn phys_addr_ctor_arg(line: &str) -> Option<&str> {
    let start = line.find("PhysAddr(")? + "PhysAddr(".len();
    let rest = &line[start..];
    let mut depth = 1;
    for (k, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..k]);
                }
            }
            _ => {}
        }
    }
    Some(rest)
}

/// Lints one `Cargo.toml`: every dependency must resolve in-tree.
pub fn lint_manifest(label: &str, toml: &str) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        let in_tree = name.ends_with(".workspace")
            || value.contains("workspace = true")
            || value.contains("path =");
        if !in_tree {
            out.push(LintViolation {
                file: label.to_string(),
                line: idx + 1,
                rule: "external-dep",
                detail: format!(
                    "dependency `{name}` is not an in-tree path/workspace crate; the \
                     workspace must build offline"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lock-order static analysis
// ---------------------------------------------------------------------------

/// One statically discovered lock site in a member crate's sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Resolved lock name — the string handed to `SimLock::new` or the
    /// dmasan lockset helpers, after constant resolution.
    pub lock: String,
    /// `true` for acquisition sites (`.with(ctx, …)`, `lockset_guarded`,
    /// `with_lockset`); `false` for the `SimLock::new` declaration.
    pub acquisition: bool,
}

/// A nested acquisition: `inner` is acquired while `outer` is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the outer site.
    pub outer: String,
    /// Lock acquired inside the outer critical section.
    pub inner: String,
    /// File of the inner (nested) acquisition.
    pub file: String,
    /// 1-indexed line of the inner acquisition.
    pub line: usize,
}

/// The exported result of the lock-order pass: the full site inventory
/// (which the model checker cross-checks its runtime lock labels against),
/// the nested-acquisition graph, and any cycles found in it.
#[derive(Debug, Clone, Default)]
pub struct LockOrderReport {
    /// Every declaration and acquisition site found.
    pub sites: Vec<LockSite>,
    /// Deduplicated nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Each distinct acquisition-order cycle, smallest lock name first.
    pub cycles: Vec<Vec<String>>,
}

impl LockOrderReport {
    /// Sorted, deduplicated lock names — the model checker's
    /// `Config::known_locks` input.
    pub fn lock_names(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.sites.iter().map(|s| s.lock.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// One `lock-order` violation per cycle, anchored at a witnessing
    /// nested acquisition.
    pub fn cycle_violations(&self) -> Vec<LintViolation> {
        self.cycles
            .iter()
            .map(|cyc| {
                let outer = &cyc[0];
                let inner = cyc.get(1).unwrap_or(&cyc[0]);
                let site = self
                    .edges
                    .iter()
                    .find(|e| &e.outer == outer && &e.inner == inner);
                let ring: Vec<&str> = cyc
                    .iter()
                    .map(String::as_str)
                    .chain([cyc[0].as_str()])
                    .collect();
                LintViolation {
                    file: site.map(|e| e.file.clone()).unwrap_or_default(),
                    line: site.map(|e| e.line).unwrap_or(0),
                    rule: "lock-order",
                    detail: format!(
                        "lock acquisition cycle {}; nested acquisitions must follow \
                         one global order",
                        ring.join(" -> ")
                    ),
                }
            })
            .collect()
    }
}

/// A source file prepared for lock scanning: `kept` has comments blanked
/// but string literals preserved (lock names live in strings, which
/// [`strip_code`] erases); `blank` additionally blanks string/char
/// contents. The two are byte-aligned with each other, so patterns are
/// matched on `blank` (immune to string contents) and names are read out
/// of `kept` at the same offsets.
struct FilePrep {
    label: String,
    kept: String,
    blank: String,
}

/// Builds the byte-aligned comment-stripped / fully-blanked views.
fn aligned_views(src: &str) -> (String, String) {
    let b = src.as_bytes();
    let mut kept = Vec::with_capacity(b.len());
    let mut blank = Vec::with_capacity(b.len());
    let nl = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                kept.push(b' ');
                blank.push(b' ');
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            kept.extend([b' ', b' ']);
            blank.extend([b' ', b' ']);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    kept.extend([b' ', b' ']);
                    blank.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    kept.extend([b' ', b' ']);
                    blank.extend([b' ', b' ']);
                    i += 2;
                } else {
                    kept.push(nl(b[i]));
                    blank.push(nl(b[i]));
                    i += 1;
                }
            }
        } else if c == b'r' && raw_string_here(b, i) {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && b[j] == b'#' {
                j += 1;
            }
            let hashes = j - (i + 1);
            // Copy `r##"` verbatim into kept, spaces into blank.
            for &d in &b[start..=j] {
                kept.push(d);
                blank.push(b' ');
            }
            i = j + 1;
            while i < b.len() {
                if b[i] == b'"' && b[i + 1..].iter().take(hashes).all(|&d| d == b'#') {
                    for &d in &b[i..i + 1 + hashes] {
                        kept.push(d);
                        blank.push(b' ');
                    }
                    i += 1 + hashes;
                    break;
                }
                kept.push(b[i]);
                blank.push(nl(b[i]));
                i += 1;
            }
        } else if c == b'"' {
            kept.push(c);
            blank.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    kept.push(b[i]);
                    kept.push(b[i + 1]);
                    blank.push(b' ');
                    blank.push(nl(b[i + 1]));
                    i += 2;
                    continue;
                }
                let done = b[i] == b'"';
                kept.push(b[i]);
                blank.push(nl(b[i]));
                i += 1;
                if done {
                    break;
                }
            }
        } else if c == b'\'' && char_literal_here(b, i) {
            kept.push(c);
            blank.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    kept.push(b[i]);
                    kept.push(b[i + 1]);
                    blank.extend([b' ', b' ']);
                    i += 2;
                    continue;
                }
                let done = b[i] == b'\'';
                kept.push(b[i]);
                blank.push(b' ');
                i += 1;
                if done {
                    break;
                }
            }
        } else {
            kept.push(c);
            blank.push(c);
            i += 1;
        }
    }
    (
        String::from_utf8_lossy(&kept).into_owned(),
        String::from_utf8_lossy(&blank).into_owned(),
    )
}

fn raw_string_here(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && (j > i + 1 || b[i + 1] == b'"')
}

fn char_literal_here(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => b.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn prep_file(label: &str, src: &str) -> FilePrep {
    let (kept, blank) = aligned_views(src);
    FilePrep {
        label: label.to_string(),
        kept,
        blank,
    }
}

/// Collects `const NAME: &str = "value";`-style string constants (the
/// idiom lock names are declared with) into `consts`, crate-wide.
fn scan_lock_consts(prep: &FilePrep, consts: &mut BTreeMap<String, String>) {
    let bb = prep.blank.as_bytes();
    let kb = prep.kept.as_bytes();
    for (pos, _) in prep.blank.match_indices("const ") {
        if pos > 0 && (bb[pos - 1].is_ascii_alphanumeric() || bb[pos - 1] == b'_') {
            continue;
        }
        let mut k = pos + "const ".len();
        while k < bb.len() && bb[k] == b' ' {
            k += 1;
        }
        let start = k;
        while k < bb.len() && (bb[k].is_ascii_alphanumeric() || bb[k] == b'_') {
            k += 1;
        }
        if k == start {
            continue;
        }
        let ident = &prep.blank[start..k];
        // The type between `:` and `=` must be a &str flavor.
        let Some(eq) = prep.blank[k..].find('=').map(|o| k + o) else {
            continue;
        };
        if !prep.blank[k..eq].contains("str") {
            continue;
        }
        let mut v = eq + 1;
        while v < kb.len() && (kb[v] == b' ' || kb[v] == b'\n') {
            v += 1;
        }
        if v >= kb.len() || kb[v] != b'"' {
            continue;
        }
        let mut e = v + 1;
        while e < kb.len() && kb[e] != b'"' {
            e += 1;
        }
        if let Ok(val) = std::str::from_utf8(&kb[v + 1..e]) {
            consts.insert(ident.to_string(), val.to_string());
        }
    }
}

/// Reads a lock-name argument starting at byte `k`: a string literal
/// (from the comment-stripped view) or an identifier resolved through the
/// crate's constant table.
fn read_lock_arg(
    prep: &FilePrep,
    mut k: usize,
    consts: &BTreeMap<String, String>,
) -> Option<String> {
    let bb = prep.blank.as_bytes();
    let kb = prep.kept.as_bytes();
    while k < kb.len() && (kb[k] == b' ' || kb[k] == b'\n' || kb[k] == b'\t') {
        k += 1;
    }
    if k >= kb.len() {
        return None;
    }
    if kb[k] == b'"' {
        let mut e = k + 1;
        while e < kb.len() && kb[e] != b'"' {
            e += 1;
        }
        return std::str::from_utf8(&kb[k + 1..e]).ok().map(str::to_string);
    }
    let start = k;
    let mut e = k;
    while e < bb.len() && (bb[e].is_ascii_alphanumeric() || bb[e] == b'_') {
        e += 1;
    }
    if e == start {
        return None;
    }
    consts.get(&prep.blank[start..e]).cloned()
}

/// The identifier ending right before byte `end` (used for `.with`
/// receivers and `SimLock::new` binders).
fn ident_before(blank: &str, end: usize) -> &str {
    let bb = blank.as_bytes();
    let mut k = end;
    while k > 0 && (bb[k - 1].is_ascii_alphanumeric() || bb[k - 1] == b'_') {
        k -= 1;
    }
    &blank[k..end]
}

/// Matches the `(` at `open` to its `)` on the fully-blanked view (string
/// contents cannot unbalance it).
fn match_paren(blank: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &c) in blank.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// An acquisition occurrence with the byte span of its critical-section
/// argument list (nested occurrences starting inside the span become
/// lock-order edges).
struct Acq {
    start: usize,
    end: usize,
    line: usize,
    names: Vec<String>,
}

/// Scans one prepared file for lock declarations and acquisitions,
/// recording sites and intra-file nested-acquisition edges.
fn scan_lock_file(
    prep: &FilePrep,
    consts: &BTreeMap<String, String>,
    sites: &mut Vec<LockSite>,
    edges: &mut Vec<LockEdge>,
) {
    let bb = prep.blank.as_bytes();
    let mask = test_region_mask(&prep.blank);
    let line_of = |pos: usize| prep.blank[..pos].bytes().filter(|&c| c == b'\n').count() + 1;
    let in_test = |line: usize| mask.get(line - 1).copied().unwrap_or(false);

    // Declarations: `binder: SimLock::new(ARG)` / `let binder = …`.
    let mut fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (pos, _) in prep.blank.match_indices("SimLock::new(") {
        let line = line_of(pos);
        if in_test(line) {
            continue;
        }
        let Some(name) = read_lock_arg(prep, pos + "SimLock::new(".len(), consts) else {
            continue;
        };
        let mut j = pos;
        while j > 0 && bb[j - 1] == b' ' {
            j -= 1;
        }
        if j > 0 && (bb[j - 1] == b':' || bb[j - 1] == b'=') {
            j -= 1;
            while j > 0 && bb[j - 1] == b' ' {
                j -= 1;
            }
            let binder = ident_before(&prep.blank, j);
            if !binder.is_empty() && binder != "let" {
                fields
                    .entry(binder.to_string())
                    .or_default()
                    .insert(name.clone());
            }
        }
        sites.push(LockSite {
            file: prep.label.clone(),
            line,
            lock: name,
            acquisition: false,
        });
    }

    let unique_lock: Option<String> = {
        let all: BTreeSet<&String> = fields.values().flatten().collect();
        (all.len() == 1).then(|| (*all.iter().next().expect("len checked")).clone())
    };

    let mut acqs: Vec<Acq> = Vec::new();
    let mut record = |names: Vec<String>, open: usize, pos: usize, acqs: &mut Vec<Acq>| {
        let line = line_of(pos);
        if names.is_empty() || in_test(line) {
            return;
        }
        let Some(end) = match_paren(bb, open) else {
            return;
        };
        for n in &names {
            sites.push(LockSite {
                file: prep.label.clone(),
                line,
                lock: n.clone(),
                acquisition: true,
            });
        }
        acqs.push(Acq {
            start: pos,
            end,
            line,
            names,
        });
    };

    // `receiver.with(ctx, |ctx| …)` — receiver must be a known SimLock
    // binder (this is what keeps `CURRENT.with(|…|)` thread-locals out).
    for (pos, _) in prep.blank.match_indices(".with(") {
        let names: Vec<String> = fields
            .get(ident_before(&prep.blank, pos))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        record(names, pos + ".with".len(), pos, &mut acqs);
    }
    // `lockset_guarded(ctx, NAME, …)` — dmasan lockset regions.
    for (pos, _) in prep.blank.match_indices("lockset_guarded(ctx") {
        let mut k = pos + "lockset_guarded(ctx".len();
        while k < bb.len() && (bb[k] == b' ' || bb[k] == b'\n') {
            k += 1;
        }
        if k >= bb.len() || bb[k] != b',' {
            continue;
        }
        let names = read_lock_arg(prep, k + 1, consts).into_iter().collect();
        record(names, pos + "lockset_guarded".len(), pos, &mut acqs);
    }
    // `self.with_lockset(ctx, |ctx| …)` — resolves to the file's single
    // declared lock (the helper wraps `self.lock.with` internally).
    for (pos, _) in prep.blank.match_indices(".with_lockset(ctx") {
        let names = unique_lock.clone().into_iter().collect();
        record(names, pos + ".with_lockset".len(), pos, &mut acqs);
    }

    for outer in &acqs {
        for inner in &acqs {
            if inner.start <= outer.start || inner.start >= outer.end {
                continue;
            }
            for no in &outer.names {
                for ni in &inner.names {
                    if !edges.iter().any(|e| &e.outer == no && &e.inner == ni) {
                        edges.push(LockEdge {
                            outer: no.clone(),
                            inner: ni.clone(),
                            file: prep.label.clone(),
                            line: inner.line,
                        });
                    }
                }
            }
        }
    }
}

/// DFS cycle extraction over the lock-name graph; each cycle reported
/// once, rotated so its smallest name comes first.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.outer).or_default().insert(&e.inner);
    }
    fn dfs<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
        out: &mut Vec<Vec<String>>,
    ) {
        color.insert(n, 1);
        stack.push(n);
        for &m in adj.get(n).into_iter().flatten() {
            match color.get(m).copied().unwrap_or(0) {
                0 => dfs(m, adj, color, stack, out),
                1 => {
                    let k = stack.iter().position(|&x| x == m).unwrap_or(0);
                    let mut cyc: Vec<String> = stack[k..].iter().map(|s| s.to_string()).collect();
                    if let Some(mi) = (0..cyc.len()).min_by_key(|&i| cyc[i].clone()) {
                        cyc.rotate_left(mi);
                    }
                    if !out.contains(&cyc) {
                        out.push(cyc);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(n, 2);
    }
    let mut color = BTreeMap::new();
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &adj, &mut color, &mut stack, &mut out);
        }
    }
    out
}

/// Runs the lock-order pass over every member crate's `src/` tree rooted
/// at `root`, returning the site inventory, acquisition graph, and cycles.
pub fn lock_order_analysis(root: &Path) -> std::io::Result<LockOrderReport> {
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let mut report = LockOrderReport::default();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in &members {
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        files.sort();
        let mut preps = Vec::new();
        let mut consts = BTreeMap::new();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let prep = prep_file(&label(f), &src);
            scan_lock_consts(&prep, &mut consts);
            preps.push(prep);
        }
        for prep in &preps {
            scan_lock_file(prep, &consts, &mut report.sites, &mut report.edges);
        }
    }
    report.cycles = find_cycles(&report.edges);
    Ok(report)
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every member crate's
/// sources and manifest, plus the root manifest.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintViolation>> {
    let mut out = Vec::new();
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in &members {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = member.join("Cargo.toml");
        if let Ok(toml) = fs::read_to_string(&manifest) {
            out.extend(lint_manifest(&label(&manifest), &toml));
        }
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        files.sort();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let rel = label(f);
            let ctx = FileContext {
                in_memsim: crate_name == "memsim",
                in_obs: crate_name == "obs",
                ..Default::default()
            };
            out.extend(lint_source(&rel, &src, ctx));
        }
        // Integration tests and benches: ambient-I/O discipline only.
        for sub in ["tests", "benches"] {
            let aux_dir = member.join(sub);
            if !aux_dir.is_dir() {
                continue;
            }
            let mut aux_files = Vec::new();
            rust_files(&aux_dir, &mut aux_files)?;
            aux_files.sort();
            for f in &aux_files {
                let src = fs::read_to_string(f)?;
                let ctx = FileContext {
                    aux: true,
                    ..Default::default()
                };
                out.extend(lint_source(&label(f), &src, ctx));
            }
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if let Ok(toml) = fs::read_to_string(&root_manifest) {
        out.extend(lint_manifest(&label(&root_manifest), &toml));
    }
    out.extend(lock_order_analysis(root)?.cycle_violations());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_strings_and_doctests() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\n/* .expect( */ let b = 'x';\n/// ```\n/// v.unwrap();\n/// ```\nfn f() {}\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(s.contains("let a ="));
        assert!(s.contains("fn f() {}"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"a } { .unwrap() \"#;\nfn g<'a>(x: &'a str) -> &'a str { x }\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        // Braces inside the raw string are gone; real braces survive.
        assert!(s.contains("fn g<'a>(x: &'a str) -> &'a str { x }"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn prod() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "panic");
    }

    #[test]
    fn waiver_with_reason_silences_panic_rule_only() {
        let src = "// lint: allow(panic) — invariant panics are documented\nfn f() { v.unwrap(); let p = PhysAddr(a + b); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "phys-addr-arith");
    }

    #[test]
    fn bare_waiver_without_reason_is_ignored() {
        let src = "// lint: allow(panic)\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn phys_addr_rules() {
        let ok = "let p = PhysAddr(addr);\nlet q = PhysAddr(0x1000);\n";
        assert!(lint_source("x.rs", ok, FileContext::default()).is_empty());
        let bad = "let p = PhysAddr(base + off * 4096);\n";
        let v = lint_source("x.rs", bad, FileContext::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "phys-addr-arith");
        // memsim owns address arithmetic.
        let memsim = FileContext {
            in_memsim: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", bad, memsim).is_empty());
    }

    #[test]
    fn ambient_io_rule() {
        let src = "use std::fs;\nfn f() { std::process::exit(1); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "ambient-io"));
        let bench = FileContext {
            io_allowed: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", src, bench).is_empty());
    }

    #[test]
    fn io_waiver_with_reason_silences_ambient_io_only() {
        let src = "// lint: allow(ambient-io) — the harness writes BENCH_HOST.json\nuse std::fs;\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic");
        // A bare waiver with no reason does not count.
        let bare = "// lint: allow(ambient-io)\nuse std::fs;\n";
        let v = lint_source("x.rs", bare, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
        // A panic waiver does not satisfy the ambient-io rule.
        let cross = "// lint: allow(panic) — deliberate\nuse std::fs;\n";
        let v = lint_source("x.rs", cross, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
    }

    #[test]
    fn relaxed_atomic_rule() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "relaxed-atomic");
        // obs owns relaxed telemetry counters.
        let obs = FileContext {
            in_obs: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", src, obs).is_empty());
        // A reasoned waiver silences it; a bare one does not.
        let waived = "// lint: allow(relaxed-atomic) — stats counter, never synchronized on\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint_source("x.rs", waived, FileContext::default()).is_empty());
        let bare = "// lint: allow(relaxed-atomic)\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_source("x.rs", bare, FileContext::default()).len(), 1);
    }

    #[test]
    fn aux_files_only_get_ambient_io() {
        let src = "use std::fs;\nfn f() { v.unwrap(); let p = PhysAddr(a + b); x.load(Ordering::Relaxed); }\n";
        let aux = FileContext {
            aux: true,
            ..Default::default()
        };
        let v = lint_source("tests/x.rs", src, aux);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
    }

    #[test]
    fn lock_sites_resolve_consts_fields_and_nesting() {
        let src = concat!(
            "const A_LOCK: &str = \"lock-a\";\n",
            "struct S { a: SimLock, b: SimLock }\n",
            "impl S {\n",
            "    fn build() -> Self { Self { a: SimLock::new(A_LOCK), b: SimLock::new(\"lock-b\") } }\n",
            "    fn nest(&self, ctx: &mut CoreCtx) {\n",
            "        self.a.with(ctx, |ctx| {\n",
            "            self.b.with(ctx, |_ctx| {});\n",
            "        });\n",
            "    }\n",
            "}\n",
        );
        let prep = prep_file("x.rs", src);
        let mut consts = BTreeMap::new();
        scan_lock_consts(&prep, &mut consts);
        assert_eq!(consts.get("A_LOCK").map(String::as_str), Some("lock-a"));
        let (mut sites, mut edges) = (Vec::new(), Vec::new());
        scan_lock_file(&prep, &consts, &mut sites, &mut edges);
        assert!(
            sites
                .iter()
                .any(|s| s.lock == "lock-a" && !s.acquisition && s.line == 4),
            "{sites:?}"
        );
        assert!(
            sites
                .iter()
                .any(|s| s.lock == "lock-b" && s.acquisition && s.line == 7),
            "{sites:?}"
        );
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(
            (
                edges[0].outer.as_str(),
                edges[0].inner.as_str(),
                edges[0].line
            ),
            ("lock-a", "lock-b", 7)
        );
    }

    #[test]
    fn thread_locals_and_test_regions_are_not_lock_sites() {
        let src = concat!(
            "fn f() { CURRENT.with(|c| c.get()); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let l = SimLock::new(\"test\"); l.with(ctx, |ctx| {}); }\n",
            "}\n",
        );
        let prep = prep_file("x.rs", src);
        let (mut sites, mut edges) = (Vec::new(), Vec::new());
        scan_lock_file(&prep, &BTreeMap::new(), &mut sites, &mut edges);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn lock_cycles_are_detected_and_reported() {
        let edges = vec![
            LockEdge {
                outer: "b".into(),
                inner: "a".into(),
                file: "x.rs".into(),
                line: 9,
            },
            LockEdge {
                outer: "a".into(),
                inner: "b".into(),
                file: "x.rs".into(),
                line: 4,
            },
        ];
        let cycles = find_cycles(&edges);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
        let report = LockOrderReport {
            sites: Vec::new(),
            edges,
            cycles,
        };
        let v = report.cycle_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].detail.contains("a -> b -> a"), "{}", v[0].detail);
        assert_eq!((v[0].file.as_str(), v[0].line), ("x.rs", 4));
    }

    #[test]
    fn acyclic_lock_graph_is_clean() {
        let edges = vec![LockEdge {
            outer: "a".into(),
            inner: "b".into(),
            file: "x.rs".into(),
            line: 4,
        }];
        assert!(find_cycles(&edges).is_empty());
    }

    #[test]
    fn manifest_rejects_external_deps() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nobs.workspace = true\nmemsim = { workspace = true }\nlocal = { path = \"../local\" }\nserde = \"1.0\"\n";
        let v = lint_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "external-dep");
        assert!(v[0].detail.contains("serde"));
    }
}
