//! A pure-std workspace lint (no `syn`, no external dependencies).
//!
//! Enforces the house rules `clippy` cannot express, by scanning the
//! member crates' sources (`crates/*/src/**/*.rs`) and manifests:
//!
//! 1. **No `unwrap()` / `expect(` outside `#[cfg(test)]`** — library code
//!    must propagate errors. Files whose panics are deliberate and
//!    documented opt out with a waiver comment:
//!    `// lint: allow(panic) — <reason>`.
//! 2. **No raw `PhysAddr` arithmetic outside `memsim`** — addresses are
//!    constructed by the memory subsystem; everyone else uses the typed
//!    `PhysAddr::add` / page-frame APIs. Constructing `PhysAddr(expr)`
//!    where `expr` contains arithmetic is flagged.
//! 3. **No `std::process` / `std::net` / `std::fs`** — the simulation is
//!    deterministic and self-contained. Files that *are* a deliberate
//!    outside-world edge (the host-bench harness, report exporters) opt
//!    out with a reasoned waiver comment:
//!    `// lint: allow(ambient-io) — <reason>`. (The umbrella crate's own
//!    `src/` — this lint and its binary — is outside the scan scope: the
//!    lint must read files.)
//! 4. **No external dependencies** — every `Cargo.toml` dependency must be
//!    an in-tree `path`/`workspace` crate, so the workspace builds with no
//!    network access.
//!
//! The scanner strips comments and string/char literals before matching,
//! and tracks `#[cfg(test)]` item spans by brace matching, so doc examples
//! and test modules do not trip the rules. Run via `cargo run --bin lint`.

use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Stable rule name: `panic`, `phys-addr-arith`, `ambient-io`,
    /// `external-dep`.
    pub rule: &'static str,
    /// What was found.
    pub detail: String,
}

impl std::fmt::Display for LintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// The waiver comment a file uses to opt out of the panic rule. A reason
/// is mandatory: `// lint: allow(panic) — deliberate invariant panics`.
pub const PANIC_WAIVER: &str = "// lint: allow(panic)";

/// The waiver comment a file uses to opt out of the ambient-I/O rule. A
/// reason is mandatory:
/// `// lint: allow(ambient-io) — the harness writes BENCH_HOST.json`.
pub const IO_WAIVER: &str = "// lint: allow(ambient-io)";

/// Whether `src` contains `waiver` followed by a non-trivial reason.
fn has_waiver(src: &str, waiver: &str) -> bool {
    src.lines().any(|l| {
        let t = l.trim_start();
        t.starts_with(waiver) && t.len() > waiver.len() + 3
    })
}

const FORBIDDEN_MODULES: [&str; 3] = ["std::process", "std::net", "std::fs"];

/// Replaces comments and string/char literals with spaces, preserving
/// newlines and all other structure (so brace matching and line numbers
/// survive). Doc comments — and therefore doctests — are stripped too.
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if is_raw_string_start(&b, i) => {
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // Opening quote.
                out.push_str(&" ".repeat(j + 1 - i));
                i = j + 1;
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                while i < b.len() {
                    if b[i] == '"' && matches_at(&b, i, &closer) {
                        out.push_str(&" ".repeat(closer.len()));
                        i += closer.len();
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < b.len() {
                            out.push(if b[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        continue;
                    }
                    if b[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '\'' if is_char_literal(&b, i) => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn matches_at(b: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| b.get(at + k) == Some(&p))
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, not part of an identifier like `for` or `var`.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && (j > i + 1 || b[i + 1] == '"')
}

fn is_char_literal(b: &[char], i: usize) -> bool {
    // Distinguish 'x' / '\n' char literals from lifetimes ('a, 'static).
    match b.get(i + 1) {
        Some('\\') => true,
        Some(_) => b.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Returns, per line (0-indexed), whether the line belongs to a
/// `#[cfg(test)]` item — computed by brace-matching the item that follows
/// the attribute. Expects *stripped* source.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // The attributed item starts here (possibly on the same line) and
        // runs until its braces balance back to zero — or, for brace-less
        // items (`#[cfg(test)] use …;`), until the terminating semicolon.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && j > i && lines[j].trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Options describing where a source file sits, which determines which
/// rules apply to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// The file belongs to `crates/memsim` (raw address arithmetic is its
    /// job).
    pub in_memsim: bool,
    /// The file is pre-approved as an ambient-I/O edge (callers that
    /// cannot carry a waiver comment); source files normally opt out with
    /// a reasoned [`IO_WAIVER`] comment instead.
    pub io_allowed: bool,
}

/// Lints one Rust source file's contents. `label` is used for reporting.
pub fn lint_source(label: &str, src: &str, ctx: FileContext) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let waived_panics = has_waiver(src, PANIC_WAIVER);
    let waived_io = has_waiver(src, IO_WAIVER);
    let stripped = strip_code(src);
    let mask = test_region_mask(&stripped);
    for (idx, line) in stripped.lines().enumerate() {
        let in_test = mask.get(idx).copied().unwrap_or(false);
        let lineno = idx + 1;
        if !in_test && !waived_panics {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "panic",
                        detail: format!(
                            "`{pat}` outside #[cfg(test)]; propagate the error or add \
                             `{PANIC_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
        if !in_test && !ctx.in_memsim {
            if let Some(arg) = phys_addr_ctor_arg(line) {
                if arg.contains(['+', '*']) || arg.contains("<<") || arg.contains(" - ") {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "phys-addr-arith",
                        detail: format!(
                            "raw PhysAddr arithmetic `PhysAddr({arg})` outside memsim; \
                             use PhysAddr::add or page-frame APIs"
                        ),
                    });
                }
            }
        }
        if !ctx.io_allowed && !waived_io {
            for m in FORBIDDEN_MODULES {
                if line.contains(m) {
                    out.push(LintViolation {
                        file: label.to_string(),
                        line: lineno,
                        rule: "ambient-io",
                        detail: format!(
                            "`{m}` in simulation code; the stack stays deterministic \
                             and self-contained — deliberate I/O edges add \
                             `{IO_WAIVER} — <reason>`"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The argument of a `PhysAddr(...)` constructor on this line, if any.
fn phys_addr_ctor_arg(line: &str) -> Option<&str> {
    let start = line.find("PhysAddr(")? + "PhysAddr(".len();
    let rest = &line[start..];
    let mut depth = 1;
    for (k, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..k]);
                }
            }
            _ => {}
        }
    }
    Some(rest)
}

/// Lints one `Cargo.toml`: every dependency must resolve in-tree.
pub fn lint_manifest(label: &str, toml: &str) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            );
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let (name, value) = (name.trim(), value.trim());
        let in_tree = name.ends_with(".workspace")
            || value.contains("workspace = true")
            || value.contains("path =");
        if !in_tree {
            out.push(LintViolation {
                file: label.to_string(),
                line: idx + 1,
                rule: "external-dep",
                detail: format!(
                    "dependency `{name}` is not an in-tree path/workspace crate; the \
                     workspace must build offline"
                ),
            });
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every member crate's
/// sources and manifest, plus the root manifest.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintViolation>> {
    let mut out = Vec::new();
    let label = |p: &Path| {
        p.strip_prefix(root)
            .unwrap_or(p)
            .display()
            .to_string()
            .replace('\\', "/")
    };
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in &members {
        let crate_name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = member.join("Cargo.toml");
        if let Ok(toml) = fs::read_to_string(&manifest) {
            out.extend(lint_manifest(&label(&manifest), &toml));
        }
        let src_dir = member.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        files.sort();
        for f in &files {
            let src = fs::read_to_string(f)?;
            let rel = label(f);
            let ctx = FileContext {
                in_memsim: crate_name == "memsim",
                io_allowed: false,
            };
            out.extend(lint_source(&rel, &src, ctx));
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if let Ok(toml) = fs::read_to_string(&root_manifest) {
        out.extend(lint_manifest(&label(&root_manifest), &toml));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_strings_and_doctests() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\n/* .expect( */ let b = 'x';\n/// ```\n/// v.unwrap();\n/// ```\nfn f() {}\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(s.contains("let a ="));
        assert!(s.contains("fn f() {}"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"a } { .unwrap() \"#;\nfn g<'a>(x: &'a str) -> &'a str { x }\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        // Braces inside the raw string are gone; real braces survive.
        assert!(s.contains("fn g<'a>(x: &'a str) -> &'a str { x }"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn prod() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "panic");
    }

    #[test]
    fn waiver_with_reason_silences_panic_rule_only() {
        let src = "// lint: allow(panic) — invariant panics are documented\nfn f() { v.unwrap(); let p = PhysAddr(a + b); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "phys-addr-arith");
    }

    #[test]
    fn bare_waiver_without_reason_is_ignored() {
        let src = "// lint: allow(panic)\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn phys_addr_rules() {
        let ok = "let p = PhysAddr(addr);\nlet q = PhysAddr(0x1000);\n";
        assert!(lint_source("x.rs", ok, FileContext::default()).is_empty());
        let bad = "let p = PhysAddr(base + off * 4096);\n";
        let v = lint_source("x.rs", bad, FileContext::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "phys-addr-arith");
        // memsim owns address arithmetic.
        let memsim = FileContext {
            in_memsim: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", bad, memsim).is_empty());
    }

    #[test]
    fn ambient_io_rule() {
        let src = "use std::fs;\nfn f() { std::process::exit(1); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "ambient-io"));
        let bench = FileContext {
            io_allowed: true,
            ..Default::default()
        };
        assert!(lint_source("x.rs", src, bench).is_empty());
    }

    #[test]
    fn io_waiver_with_reason_silences_ambient_io_only() {
        let src = "// lint: allow(ambient-io) — the harness writes BENCH_HOST.json\nuse std::fs;\nfn f() { v.unwrap(); }\n";
        let v = lint_source("x.rs", src, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic");
        // A bare waiver with no reason does not count.
        let bare = "// lint: allow(ambient-io)\nuse std::fs;\n";
        let v = lint_source("x.rs", bare, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
        // A panic waiver does not satisfy the ambient-io rule.
        let cross = "// lint: allow(panic) — deliberate\nuse std::fs;\n";
        let v = lint_source("x.rs", cross, FileContext::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ambient-io");
    }

    #[test]
    fn manifest_rejects_external_deps() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nobs.workspace = true\nmemsim = { workspace = true }\nlocal = { path = \"../local\" }\nserde = \"1.0\"\n";
        let v = lint_manifest("Cargo.toml", toml);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "external-dep");
        assert!(v[0].detail.contains("serde"));
    }
}
