#!/bin/sh
# Local mirror of .github/workflows/ci.yml — fully offline.
set -eux
export CARGO_NET_OFFLINE=true
cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo test -q --workspace --features dmasan-strict
# Lint, split like the workflow: the fast style pass first (cheap,
# pre-commit-friendly), then the full pass (interprocedural protocol
# typestate checker, device-taint, lock-order, unsafe audit, dead-waiver)
# with the machine-readable report artifact. The full pass carries a
# wall-clock budget: if the summary/taint machinery ever makes the lint
# slow enough to discourage running it, that is a CI failure, not a
# shrug.
cargo run -q --bin lint -- --fast
cargo run -q --bin lint -- --json target/lint_report.json --budget-ms 60000
# Bounded model checking: prove the strict strategies hold the protection
# invariant within bounds and replay the committed deferred-invalidation
# counterexample. Deterministic (fixed bounds, no wall clock).
cargo run -q --release -p modelcheck --bin mc-suite
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Observability round-trips: the telemetry walk-through re-verifies the
# trajectory export from its own file, and profile_report asserts the
# profile tree's depth-1 cut is cycle-identical to the Fig. 5 breakdown
# (and writes the flamegraph/Perfetto artifacts under target/).
cargo run -q --release --example telemetry_report
cargo run -q --release --bin profile_report
# Scaling sweep: Figures 6-8 extended along the core-count axis
# (16/64/128/256 virtual cores, global vs per-core allocation state);
# writes the curve artifacts to target/scaling_curves.{csv,jsonl}.
cargo bench -p bench --bench scaling
# Perf-trajectory trend report: per-label deltas across the whole
# BENCH_HOST.json history, flagging any workload slower than its
# historical best. Pure file read — runs before the measuring gate.
cargo bench -p bench --bench host -- --trend target/bench_trend.txt
# Host-time regression gate: fail if any hot-path workload runs >25%
# slower than the pinned `post-wheel` baseline in BENCH_HOST.json.
cargo bench -p bench --bench host -- --check post-wheel
