#!/bin/sh
# Local mirror of .github/workflows/ci.yml — fully offline.
set -eux
export CARGO_NET_OFFLINE=true
cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo test -q --workspace --features dmasan-strict
cargo run -q --bin lint
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
